/**
 * @file
 * Noisy execution of physical circuits on a Device model.
 *
 * The Executor is the stand-in for submitting a compiled program to
 * the real machine: it takes a *physical* circuit (qubit indices are
 * device qubits; every 2-qubit gate sits on a coupling edge), applies
 * the device's systematic and stochastic noise, and returns shot
 * counts exactly as the IBMQ job API would.
 *
 * Two engines share one preprocessing pass (the ExecutionTape, see
 * sim/execution_tape.hpp):
 *  - trajectory: per-shot state-vector evolution with sampled noise;
 *  - exact: density-matrix evolution applying every channel fully.
 *
 * Only the qubits the circuit touches are simulated; the tape compacts
 * physical indices into a dense local register while retaining the
 * physical identities for calibration/noise lookups.
 *
 * Thread safety: every run()/exactDistribution() overload is const and
 * touches only call-local state, so one Executor may be used from many
 * threads concurrently as long as each caller supplies its own Rng.
 * Tapes are immutable and freely shareable across threads; pass a
 * prebuilt (or TapeCache-served) tape to avoid rebuilding identical
 * preprocessing for every call on the same circuit.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "hw/device.hpp"
#include "sim/execution_tape.hpp"
#include "stats/counts.hpp"
#include "stats/distribution.hpp"

namespace qedm::sim {

/** Runs physical circuits against one device model. */
class Executor
{
  public:
    /** @param device device model (copied; the Executor owns its own). */
    explicit Executor(hw::Device device);

    const hw::Device &device() const { return device_; }

    /**
     * Execute @p physical for @p shots trials with per-shot noise
     * trajectories and return the outcome histogram. Builds the tape
     * once and reuses it for every shot.
     */
    stats::Counts run(const circuit::Circuit &physical,
                      std::uint64_t shots, Rng &rng) const;

    /**
     * Same, from a prebuilt tape (must have been built against a
     * device with this Executor's fingerprint).
     */
    stats::Counts run(const ExecutionTape &tape, std::uint64_t shots,
                      Rng &rng) const;

    /**
     * Batched-engine width: stochastic tapes whose draw structure is
     * state-independent (sim/shot_plan.hpp) evolve this many shots
     * per tape walk on the SoA engine, bit-identical to the scalar
     * loop. 0 forces the scalar per-shot path (the pre-batching
     * reference); widths are additionally capped so the amplitude
     * planes stay memory-sane for large registers. Configure before
     * sharing the Executor across threads.
     */
    static constexpr std::size_t kDefaultSimBatch = 64;
    void setSimBatch(std::size_t width) { simBatch_ = width; }
    std::size_t simBatch() const { return simBatch_; }

    /**
     * Per-trial continuation gate — the resilience layer's fault
     * hook. The gate is invoked with the 0-based index of the next
     * trial before it executes; returning false aborts the remaining
     * trials and the counts of the completed ones are returned (the
     * "machine died mid-run" semantics qubit-dropout faults need).
     * The gate-free overloads never touch this path, so execution is
     * zero-cost when no faults are injected.
     */
    using TrialGate = std::function<bool(std::uint64_t)>;

    /** run() with a fault-injection gate deciding trial continuation. */
    stats::Counts run(const ExecutionTape &tape, std::uint64_t shots,
                      Rng &rng, const TrialGate &gate) const;

    /**
     * Exact output distribution over the classical register via
     * density-matrix simulation.
     *
     * Hard limit: at most 10 *active* qubits (the density matrix is
     * dense over 4^n entries — 10 qubits is already a 1M-complex
     * matrix). Exceeding it throws UserError with the offending count;
     * use run() (trajectory sampling) for larger circuits.
     */
    stats::Distribution
    exactDistribution(const circuit::Circuit &physical) const;

    /** Same, from a prebuilt tape. */
    stats::Distribution
    exactDistribution(const ExecutionTape &tape) const;

  private:
    hw::Device device_;
    std::size_t simBatch_ = kDefaultSimBatch;
};

/**
 * Exact output distribution of @p circuit on an ideal machine,
 * ignoring any device (no mapping required). Barriers are skipped;
 * Ccx/Cswap/Swap are decomposed. Qubits without a Measure are
 * marginalized out.
 */
stats::Distribution idealDistribution(const circuit::Circuit &circuit);

} // namespace qedm::sim
