/**
 * @file
 * Baseline-ISA build of the lane kernels: compiled with the project's
 * default flags (no AVX2), so this translation unit is the scalar
 * fallback — and the bit-identity reference — for machines and builds
 * without SIMD support. See lane_kernels_impl.hpp.
 */

#define QEDM_LANE_NS lane_scalar
#include "sim/lane_kernels_impl.hpp"
