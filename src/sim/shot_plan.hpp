/**
 * @file
 * Pre-sampled per-shot stochastic draws for the batched engine.
 *
 * The scalar trajectory loop interleaves RNG draws with state
 * evolution; the batched engine walks the tape once per batch, so
 * every draw must be taken *before* the walk — in exactly the order
 * the scalar loop would have taken it, shot by shot, so the RNG
 * stream position and every drawn double are unchanged (the
 * DESIGN.md §12 draw-order contract).
 *
 * Per shot, the draw sequence decomposes into:
 *  - Kraus sites (pre/post-gate and measurement-window relaxation):
 *    exactly one uniform each, recorded raw — the Born-rule *decision*
 *    depends on the evolved state and is deferred to the walk;
 *  - depolarizing sites: one bernoulli, plus a uniformInt(3|15) on a
 *    hit — both state-independent, resolved here to a Pauli index
 *    (-1 = no error) applied later as a lane-masked fixup;
 *  - measurement: one uniform, recorded raw (basis scan deferred);
 *  - readout flips: one uniform per *active* measure (both flip
 *    probabilities nonzero), recorded raw — which probability applies
 *    depends on the measured bit;
 *  - pair readout: one bernoulli each, state-independent, resolved.
 *
 * Whether a readout site draws at all is state-dependent when exactly
 * one of P(0->1)/P(1->0) is zero; batchEligible() rejects such tapes
 * and the Executor falls back to the scalar path.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "hw/device.hpp"
#include "sim/execution_tape.hpp"

namespace qedm::sim {

/**
 * May (tape, calibration) run on the batched engine with results
 * bit-identical to the scalar path? Requires per-shot stochasticity
 * (deterministic tapes already have a cheaper dedicated path) and a
 * state-independent draw structure (see file comment).
 */
bool batchEligible(const ExecutionTape &tape,
                   const hw::Calibration &cal);

/**
 * Pre-sampled draws for one batch of shots, laid out site-major
 * (`[site][lane]`) so the batch walk reads each site's lane row
 * contiguously. Reusable across batches: presample() resizes for the
 * batch's lane count without shrinking capacity.
 */
class BatchPlan
{
  public:
    /**
     * Replay the scalar loop's RNG call sequence for @p lanes shots
     * (shot-major, like the scalar loop consumes them) and record the
     * draws. @p rng advances exactly as if the scalar loop had run
     * @p lanes shots.
     */
    void presample(const ExecutionTape &tape,
                   const hw::Calibration &cal, std::size_t lanes,
                   Rng &rng);

    std::size_t lanes() const { return lanes_; }

    /** Raw uniform per lane for Kraus site @p site (walk order). */
    const double *krausU(std::size_t site) const
    {
        return krausU_.data() + site * lanes_;
    }
    /** Pauli index per lane (-1 none) for depol site @p site. */
    const std::int8_t *pauli(std::size_t site) const
    {
        return pauli_.data() + site * lanes_;
    }
    /** Raw measurement-sampling uniform per lane. */
    const double *measureU() const { return measureU_.data(); }
    /** Raw readout uniform per lane for active readout site @p site. */
    const double *readoutU(std::size_t site) const
    {
        return readoutU_.data() + site * lanes_;
    }
    /** Resolved joint pair flip per lane for pair site @p site. */
    const std::uint8_t *pairFlip(std::size_t site) const
    {
        return pairFlip_.data() + site * lanes_;
    }

  private:
    std::size_t lanes_ = 0;
    std::vector<double> krausU_;
    std::vector<std::int8_t> pauli_;
    std::vector<double> measureU_;
    std::vector<double> readoutU_;
    std::vector<std::uint8_t> pairFlip_;
};

} // namespace qedm::sim
