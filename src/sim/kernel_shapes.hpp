/**
 * @file
 * Structured-matrix classification shared by the simulation engines.
 *
 * The scalar StateVector and the batched SoA engine must dispatch the
 * *same* matrix to the *same* kernel shape — the bit-identity contract
 * between them (DESIGN.md §17) leans on the dispatch being common code
 * rather than two copies that could drift. Detection costs a handful
 * of comparisons against the 2^n-amplitude sweep it specializes.
 */

#pragma once

#include <array>

#include "circuit/op.hpp"

namespace qedm::sim::kernels {

using circuit::Complex;

inline constexpr Complex kZero(0.0);
inline constexpr Complex kOne(1.0);

/** Classification of a 2x2 matrix into kernel shapes. */
enum class Mat2Shape
{
    General,
    Diagonal,     ///< m[1] == m[2] == 0 (Z/S/T/Rz/phase, damping K0)
    AntiDiagonal, ///< m[0] == m[3] == 0 (X/Y, damping K1)
};

inline Mat2Shape
classify1q(const std::array<Complex, 4> &m)
{
    if (m[1] == kZero && m[2] == kZero)
        return Mat2Shape::Diagonal;
    if (m[0] == kZero && m[3] == kZero)
        return Mat2Shape::AntiDiagonal;
    return Mat2Shape::General;
}

/**
 * Monomial (one nonzero per row, distinct columns) decomposition of a
 * 4x4 matrix: covers CX, CZ, SWAP, diagonal phases, and Pauli tensor
 * products. @returns false for matrices with any denser row.
 */
inline bool
decomposeMonomial4(const std::array<Complex, 16> &m, int col[4],
                   Complex coeff[4])
{
    int used = 0;
    for (int r = 0; r < 4; ++r) {
        int nz = -1;
        for (int c = 0; c < 4; ++c) {
            if (m[r * 4 + c] != kZero) {
                if (nz >= 0)
                    return false;
                nz = c;
            }
        }
        if (nz < 0 || (used & (1 << nz)))
            return false;
        used |= 1 << nz;
        col[r] = nz;
        coeff[r] = m[r * 4 + nz];
    }
    return true;
}

/** Is @p m the exact 2x2 identity? (Identity factors are skipped by
 *  both engines without touching amplitudes or the norm cache.) */
inline bool
isIdentity1q(const std::array<Complex, 4> &m)
{
    return m[0] == kOne && m[1] == kZero && m[2] == kZero &&
           m[3] == kOne;
}

} // namespace qedm::sim::kernels
