#include "sim/density_matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qedm::sim {

DensityMatrix::DensityMatrix(int num_qubits)
    : numQubits_(num_qubits), dim_(std::size_t(1) << num_qubits)
{
    QEDM_REQUIRE(num_qubits >= 1 && num_qubits <= 10,
                 "density matrices are limited to 10 qubits");
    rho_.assign(dim_ * dim_, Complex(0.0));
    rho_[0] = Complex(1.0);
}

Complex
DensityMatrix::at(std::size_t row, std::size_t col) const
{
    QEDM_REQUIRE(row < dim_ && col < dim_, "index out of range");
    return rho_[row * dim_ + col];
}

void
DensityMatrix::apply1q(const std::array<Complex, 4> &m, int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    const std::size_t mask = std::size_t(1) << q;
    // Left-multiply columns by m.
    for (std::size_t col = 0; col < dim_; ++col) {
        for (std::size_t row = 0; row < dim_; ++row) {
            if (row & mask)
                continue;
            const std::size_t r0 = row, r1 = row | mask;
            const Complex a = rho_[r0 * dim_ + col];
            const Complex b = rho_[r1 * dim_ + col];
            rho_[r0 * dim_ + col] = m[0] * a + m[1] * b;
            rho_[r1 * dim_ + col] = m[2] * a + m[3] * b;
        }
    }
    // Right-multiply rows by m^dagger.
    for (std::size_t row = 0; row < dim_; ++row) {
        for (std::size_t col = 0; col < dim_; ++col) {
            if (col & mask)
                continue;
            const std::size_t c0 = col, c1 = col | mask;
            const Complex a = rho_[row * dim_ + c0];
            const Complex b = rho_[row * dim_ + c1];
            rho_[row * dim_ + c0] =
                a * std::conj(m[0]) + b * std::conj(m[1]);
            rho_[row * dim_ + c1] =
                a * std::conj(m[2]) + b * std::conj(m[3]);
        }
    }
}

void
DensityMatrix::apply2q(const std::array<Complex, 16> &m, int q0, int q1)
{
    QEDM_REQUIRE(q0 >= 0 && q0 < numQubits_ && q1 >= 0 &&
                     q1 < numQubits_ && q0 != q1,
                 "invalid two-qubit operands");
    const std::size_t m0 = std::size_t(1) << q0;
    const std::size_t m1 = std::size_t(1) << q1;
    // Left-multiply columns.
    for (std::size_t col = 0; col < dim_; ++col) {
        for (std::size_t row = 0; row < dim_; ++row) {
            if (row & (m0 | m1))
                continue;
            const std::size_t idx[4] = {row, row | m1, row | m0,
                                        row | m0 | m1};
            Complex v[4];
            for (int k = 0; k < 4; ++k)
                v[k] = rho_[idx[k] * dim_ + col];
            for (int r = 0; r < 4; ++r) {
                Complex acc(0.0);
                for (int c = 0; c < 4; ++c)
                    acc += m[r * 4 + c] * v[c];
                rho_[idx[r] * dim_ + col] = acc;
            }
        }
    }
    // Right-multiply rows by m^dagger.
    for (std::size_t row = 0; row < dim_; ++row) {
        for (std::size_t col = 0; col < dim_; ++col) {
            if (col & (m0 | m1))
                continue;
            const std::size_t idx[4] = {col, col | m1, col | m0,
                                        col | m0 | m1};
            Complex v[4];
            for (int k = 0; k < 4; ++k)
                v[k] = rho_[row * dim_ + idx[k]];
            for (int c = 0; c < 4; ++c) {
                Complex acc(0.0);
                for (int k = 0; k < 4; ++k)
                    acc += v[k] * std::conj(m[c * 4 + k]);
                rho_[row * dim_ + idx[c]] = acc;
            }
        }
    }
}

void
DensityMatrix::applyGate(circuit::OpKind kind,
                         const std::vector<int> &qubits,
                         const std::vector<double> &params)
{
    using circuit::OpKind;
    QEDM_REQUIRE(circuit::opIsUnitary(kind) && kind != OpKind::Barrier,
                 "applyGate expects a unitary gate");
    const int arity = circuit::opArity(kind);
    if (arity == 1) {
        apply1q(circuit::gateMatrix1q(kind, params), qubits[0]);
    } else if (arity == 2) {
        apply2q(circuit::gateMatrix2q(kind), qubits[0], qubits[1]);
    } else {
        throw UserError("applyGate: decompose 3-qubit gates first");
    }
}

void
DensityMatrix::applyKraus1q(const Kraus1q &kraus, int q)
{
    QEDM_REQUIRE(!kraus.empty(), "empty Kraus set");
    std::vector<Complex> acc(dim_ * dim_, Complex(0.0));
    const std::vector<Complex> original = rho_;
    for (const auto &k : kraus) {
        rho_ = original;
        apply1q(k, q);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += rho_[i];
    }
    rho_ = std::move(acc);
}

void
DensityMatrix::applyDepolarizing2q(double p, int q0, int q1)
{
    QEDM_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
    if (p == 0.0)
        return;
    std::vector<Complex> acc(dim_ * dim_, Complex(0.0));
    const std::vector<Complex> original = rho_;
    // (1 - p) * rho
    for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = (1.0 - p) * original[i];
    // + p/15 * sum over non-identity Pauli pairs
    for (int w = 0; w < 15; ++w) {
        rho_ = original;
        const auto [pa, pb] = twoQubitPauli(w);
        apply1q(pa, q0);
        apply1q(pb, q1);
        for (std::size_t i = 0; i < acc.size(); ++i)
            acc[i] += (p / 15.0) * rho_[i];
    }
    rho_ = std::move(acc);
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> p(dim_);
    for (std::size_t i = 0; i < dim_; ++i)
        p[i] = std::max(rho_[i * dim_ + i].real(), 0.0);
    return p;
}

double
DensityMatrix::trace() const
{
    double t = 0.0;
    for (std::size_t i = 0; i < dim_; ++i)
        t += rho_[i * dim_ + i].real();
    return t;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_ij rho_ij * rho_ji = sum_ij |rho_ij|^2 for
    // Hermitian rho.
    double p = 0.0;
    for (const Complex &v : rho_)
        p += std::norm(v);
    return p;
}

} // namespace qedm::sim
