#include "sim/stabilizer.hpp"

#include "common/error.hpp"

namespace qedm::sim {

using circuit::OpKind;

StabilizerState::StabilizerState(int num_qubits)
    : numQubits_(num_qubits)
{
    QEDM_REQUIRE(num_qubits >= 1 && num_qubits <= 64,
                 "stabilizer register must be in [1, 64] qubits");
    reset();
}

void
StabilizerState::reset()
{
    const std::size_t n = static_cast<std::size_t>(numQubits_);
    const std::size_t rows = 2 * n + 1;
    x_.assign(rows, std::vector<std::uint8_t>(n, 0));
    z_.assign(rows, std::vector<std::uint8_t>(n, 0));
    r_.assign(rows, 0);
    for (std::size_t i = 0; i < n; ++i) {
        x_[i][i] = 1;     // destabilizer X_i
        z_[i + n][i] = 1; // stabilizer Z_i
    }
}

void
StabilizerState::h(int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    for (std::size_t i = 0; i < x_.size(); ++i) {
        r_[i] ^= x_[i][q] & z_[i][q];
        std::swap(x_[i][q], z_[i][q]);
    }
}

void
StabilizerState::s(int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    for (std::size_t i = 0; i < x_.size(); ++i) {
        r_[i] ^= x_[i][q] & z_[i][q];
        z_[i][q] ^= x_[i][q];
    }
}

void
StabilizerState::sdg(int q)
{
    s(q);
    z(q);
}

void
StabilizerState::x(int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    for (std::size_t i = 0; i < x_.size(); ++i)
        r_[i] ^= z_[i][q];
}

void
StabilizerState::y(int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    for (std::size_t i = 0; i < x_.size(); ++i)
        r_[i] ^= x_[i][q] ^ z_[i][q];
}

void
StabilizerState::z(int q)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    for (std::size_t i = 0; i < x_.size(); ++i)
        r_[i] ^= x_[i][q];
}

void
StabilizerState::cx(int control, int target)
{
    QEDM_REQUIRE(control >= 0 && control < numQubits_ && target >= 0 &&
                     target < numQubits_ && control != target,
                 "invalid CX operands");
    for (std::size_t i = 0; i < x_.size(); ++i) {
        r_[i] ^= x_[i][control] & z_[i][target] &
                 (x_[i][target] ^ z_[i][control] ^ 1);
        x_[i][target] ^= x_[i][control];
        z_[i][control] ^= z_[i][target];
    }
}

void
StabilizerState::cz(int a, int b)
{
    h(b);
    cx(a, b);
    h(b);
}

void
StabilizerState::swap(int a, int b)
{
    cx(a, b);
    cx(b, a);
    cx(a, b);
}

bool
StabilizerState::isClifford(OpKind kind)
{
    switch (kind) {
      case OpKind::I:
      case OpKind::X:
      case OpKind::Y:
      case OpKind::Z:
      case OpKind::H:
      case OpKind::S:
      case OpKind::Sdg:
      case OpKind::Cx:
      case OpKind::Cz:
      case OpKind::Swap:
        return true;
      default:
        return false;
    }
}

void
StabilizerState::applyGate(OpKind kind, const std::vector<int> &qubits)
{
    QEDM_REQUIRE(isClifford(kind),
                 "`" + circuit::opName(kind) +
                     "` is not a Clifford gate");
    switch (kind) {
      case OpKind::I:
        break;
      case OpKind::X:
        x(qubits.at(0));
        break;
      case OpKind::Y:
        y(qubits.at(0));
        break;
      case OpKind::Z:
        z(qubits.at(0));
        break;
      case OpKind::H:
        h(qubits.at(0));
        break;
      case OpKind::S:
        s(qubits.at(0));
        break;
      case OpKind::Sdg:
        sdg(qubits.at(0));
        break;
      case OpKind::Cx:
        cx(qubits.at(0), qubits.at(1));
        break;
      case OpKind::Cz:
        cz(qubits.at(0), qubits.at(1));
        break;
      case OpKind::Swap:
        swap(qubits.at(0), qubits.at(1));
        break;
      default:
        throw InternalError("unreachable Clifford dispatch");
    }
}

namespace {

/** Phase exponent of multiplying Pauli (x1,z1) by (x2,z2), mod 4. */
int
gExponent(int x1, int z1, int x2, int z2)
{
    if (!x1 && !z1)
        return 0;
    if (x1 && z1)
        return z2 - x2;
    if (x1 && !z1)
        return z2 * (2 * x2 - 1);
    return x2 * (1 - 2 * z2);
}

} // namespace

void
StabilizerState::rowMult(std::size_t i, std::size_t k)
{
    // row i := row k * row i (Aaronson-Gottesman "rowsum(i, k)").
    int phase = 2 * r_[i] + 2 * r_[k];
    const std::size_t n = static_cast<std::size_t>(numQubits_);
    for (std::size_t j = 0; j < n; ++j) {
        phase += gExponent(x_[k][j], z_[k][j], x_[i][j], z_[i][j]);
        x_[i][j] ^= x_[k][j];
        z_[i][j] ^= z_[k][j];
    }
    phase %= 4;
    if (phase < 0)
        phase += 4;
    QEDM_ASSERT(phase == 0 || phase == 2,
                "stabilizer phase must stay real");
    r_[i] = phase == 2 ? 1 : 0;
}

bool
StabilizerState::isDeterministic(int q) const
{
    const std::size_t n = static_cast<std::size_t>(numQubits_);
    for (std::size_t p = n; p < 2 * n; ++p) {
        if (x_[p][q])
            return false;
    }
    return true;
}

int
StabilizerState::measure(int q, Rng &rng)
{
    QEDM_REQUIRE(q >= 0 && q < numQubits_, "qubit index out of range");
    const std::size_t n = static_cast<std::size_t>(numQubits_);

    std::size_t p = 2 * n;
    for (std::size_t i = n; i < 2 * n; ++i) {
        if (x_[i][q]) {
            p = i;
            break;
        }
    }
    if (p < 2 * n) {
        // Random outcome.
        for (std::size_t i = 0; i < 2 * n; ++i) {
            if (i != p && x_[i][q])
                rowMult(i, p);
        }
        x_[p - n] = x_[p];
        z_[p - n] = z_[p];
        r_[p - n] = r_[p];
        std::fill(x_[p].begin(), x_[p].end(), 0);
        std::fill(z_[p].begin(), z_[p].end(), 0);
        z_[p][q] = 1;
        r_[p] = rng.bernoulli(0.5) ? 1 : 0;
        return r_[p];
    }
    // Deterministic outcome: accumulate into the scratch row.
    std::fill(x_[2 * n].begin(), x_[2 * n].end(), 0);
    std::fill(z_[2 * n].begin(), z_[2 * n].end(), 0);
    r_[2 * n] = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (x_[i][q])
            rowMult(2 * n, i + n);
    }
    return r_[2 * n];
}

stats::Counts
runStabilizer(const circuit::Circuit &circuit, std::uint64_t shots,
              Rng &rng)
{
    QEDM_REQUIRE(shots > 0, "shots must be positive");
    const circuit::Circuit flat = circuit.decomposed();
    QEDM_REQUIRE(isCliffordCircuit(flat),
                 "circuit contains non-Clifford gates");
    QEDM_REQUIRE(flat.numClbits() >= 1,
                 "circuit must measure at least one qubit");

    stats::Counts counts(flat.numClbits());
    StabilizerState state(flat.numQubits());
    for (std::uint64_t shot = 0; shot < shots; ++shot) {
        state.reset();
        Outcome outcome = 0;
        for (const auto &g : flat.gates()) {
            if (g.kind == OpKind::Barrier)
                continue;
            if (g.kind == OpKind::Measure) {
                outcome = setBit(outcome, g.clbit,
                                 state.measure(g.qubits[0], rng));
            } else {
                state.applyGate(g.kind, g.qubits);
            }
        }
        counts.add(outcome);
    }
    return counts;
}

bool
isCliffordCircuit(const circuit::Circuit &circuit)
{
    const circuit::Circuit flat = circuit.decomposed();
    for (const auto &g : flat.gates()) {
        if (g.kind == OpKind::Barrier || g.kind == OpKind::Measure)
            continue;
        if (!StabilizerState::isClifford(g.kind))
            return false;
    }
    return true;
}

} // namespace qedm::sim
