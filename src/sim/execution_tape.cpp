#include "sim/execution_tape.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qedm::sim {

using circuit::Circuit;
using circuit::Gate;
using circuit::OpKind;

ExecutionTape
ExecutionTape::build(const hw::Device &device, const Circuit &physical)
{
    const auto &topo = device.topology();
    const auto &cal = device.calibration();
    const auto &noise = device.noise();
    const auto &spec = noise.spec();

    QEDM_REQUIRE(physical.numQubits() == topo.numQubits(),
                 "physical circuit register must match the device");
    const Circuit flat = physical.decomposed();

    // Collect active qubits and build the local compaction map.
    std::map<int, int> physToLocal;
    for (const Gate &g : flat.gates()) {
        for (int q : g.qubits) {
            if (!physToLocal.count(q)) {
                const int local = static_cast<int>(physToLocal.size());
                physToLocal[q] = local;
            }
        }
    }
    // Renumber in physical order for determinism.
    {
        int next = 0;
        for (auto &[phys, local] : physToLocal)
            local = next++;
    }

    ExecutionTape tape;
    tape.numLocal = static_cast<int>(physToLocal.size());
    tape.numClbits = flat.numClbits();
    tape.localToPhys.resize(tape.numLocal);
    for (const auto &[phys, local] : physToLocal)
        tape.localToPhys[local] = phys;
    QEDM_REQUIRE(tape.numLocal >= 1, "circuit has no active qubits");

    std::vector<bool> measured(topo.numQubits(), false);
    std::vector<bool> clbitWritten(std::max(flat.numClbits(), 1), false);
    // ASAP schedule clock per local qubit, for idle-window damping.
    std::vector<double> ready_ns(
        static_cast<std::size_t>(tape.numLocal), 0.0);

    for (const Gate &g : flat.gates()) {
        if (g.kind == OpKind::Barrier)
            continue;
        for (int q : g.qubits) {
            QEDM_REQUIRE(!measured[q],
                         "gate after measurement is not supported");
        }
        if (g.kind == OpKind::Measure) {
            const int q = g.qubits[0];
            measured[q] = true;
            QEDM_REQUIRE(!clbitWritten[g.clbit],
                         "clbit measured more than once");
            clbitWritten[g.clbit] = true;
            tape.measures.push_back(
                TapeMeasure{physToLocal.at(q), q, g.clbit, {}});
            continue;
        }
        TapeOp op;
        op.kind = g.kind;
        op.params = g.params;
        op.p0 = g.qubits[0];
        op.l0 = physToLocal.at(op.p0);
        if (circuit::opArity(g.kind) == 1)
            op.gate1q = circuit::gateMatrix1q(g.kind, g.params);
        else
            op.gate2q = circuit::gateMatrix2q(g.kind);
        auto addRelaxation = [&](int local, int phys, double dur_ns) {
            if (!spec.enableDecoherence)
                return;
            for (auto &kraus : thermalRelaxation(
                     dur_ns, cal.qubit(phys).t1Us,
                     cal.qubit(phys).t2Us)) {
                op.relaxation.emplace_back(local, std::move(kraus));
            }
        };
        const double duration = circuit::opArity(g.kind) == 1
                                    ? spec.gate1qNs
                                    : spec.gate2qNs;
        double start_ns = 0.0;
        for (int q : g.qubits) {
            start_ns = std::max(
                start_ns,
                ready_ns[static_cast<std::size_t>(physToLocal.at(q))]);
        }
        // Idle-window damping for operands that waited.
        if (spec.enableDecoherence && spec.idleDecoherence) {
            for (int q : g.qubits) {
                const int local = physToLocal.at(q);
                const double gap =
                    start_ns - ready_ns[static_cast<std::size_t>(local)];
                if (gap > 0.0) {
                    for (auto &kraus : thermalRelaxation(
                             gap, cal.qubit(q).t1Us,
                             cal.qubit(q).t2Us)) {
                        op.preRelaxation.emplace_back(
                            local, std::move(kraus));
                    }
                }
            }
        }
        for (int q : g.qubits) {
            ready_ns[static_cast<std::size_t>(physToLocal.at(q))] =
                start_ns + duration;
        }
        if (circuit::opArity(g.kind) == 1) {
            op.overRotation = noise.overRotation1q(op.p0);
            op.depolProb = std::min(
                cal.qubit(op.p0).error1q * spec.stochasticScale, 1.0);
            addRelaxation(op.l0, op.p0, spec.gate1qNs);
        } else {
            op.p1 = g.qubits[1];
            op.l1 = physToLocal.at(op.p1);
            const int edge = topo.edgeIndex(op.p0, op.p1);
            QEDM_REQUIRE(edge >= 0,
                         "two-qubit gate on uncoupled physical qubits");
            op.overRotation =
                noise.overRotation(static_cast<std::size_t>(edge));
            op.controlPhase =
                noise.controlPhase(static_cast<std::size_t>(edge));
            op.depolProb = std::min(
                cal.edge(static_cast<std::size_t>(edge)).cxError *
                    spec.stochasticScale,
                1.0);
            for (const auto &xt :
                 noise.crosstalk(static_cast<std::size_t>(edge))) {
                auto it = physToLocal.find(xt.spectator);
                if (it != physToLocal.end()) {
                    op.crosstalk.emplace_back(
                        it->second,
                        circuit::gateMatrix1q(OpKind::Rz,
                                              {xt.angleRad}));
                }
            }
            addRelaxation(op.l0, op.p0, spec.gate2qNs);
            addRelaxation(op.l1, op.p1, spec.gate2qNs);
        }
        // Pre-materialize the coherent-noise kicks so the shot loop
        // multiplies by stored matrices instead of re-deriving them.
        if (op.overRotation != 0.0) {
            op.overRotationMat =
                circuit::gateMatrix1q(OpKind::Rx, {op.overRotation});
        }
        if (op.controlPhase != 0.0) {
            op.controlPhaseMat =
                circuit::gateMatrix1q(OpKind::Rz, {op.controlPhase});
        }
        if (op.depolProb > 0.0 || !op.relaxation.empty() ||
            !op.preRelaxation.empty()) {
            tape.stochastic = true;
        }
        tape.ops.push_back(std::move(op));
    }
    QEDM_REQUIRE(!tape.measures.empty(),
                 "circuit must measure at least one qubit");
    if (spec.enableDecoherence) {
        // Measurement fires simultaneously at circuit end; qubits that
        // finished early idle until then.
        double end_ns = 0.0;
        for (double t : ready_ns)
            end_ns = std::max(end_ns, t);
        for (auto &m : tape.measures) {
            if (spec.idleDecoherence) {
                const double gap =
                    end_ns - ready_ns[static_cast<std::size_t>(m.local)];
                if (gap > 0.0) {
                    m.relaxation = thermalRelaxation(
                        gap, cal.qubit(m.phys).t1Us,
                        cal.qubit(m.phys).t2Us);
                }
            }
            for (auto &kraus : thermalRelaxation(
                     spec.measureNs, cal.qubit(m.phys).t1Us,
                     cal.qubit(m.phys).t2Us)) {
                m.relaxation.push_back(std::move(kraus));
            }
            if (!m.relaxation.empty())
                tape.stochastic = true;
        }
    }

    // Correlated readout channels between pairs of *measured* qubits.
    std::map<int, int> physToClbit;
    for (const auto &m : tape.measures)
        physToClbit[m.phys] = m.clbit;
    for (const auto &cr : noise.correlatedReadout()) {
        auto a = physToClbit.find(cr.qubitA);
        auto b = physToClbit.find(cr.qubitB);
        if (a != physToClbit.end() && b != physToClbit.end()) {
            tape.pairReadout.push_back(TapePairReadout{
                a->second, b->second, cr.jointFlipProb});
        }
    }
    return tape;
}

TapeCache::TapeCache(std::size_t capacity) : capacity_(capacity)
{
    QEDM_REQUIRE(capacity >= 1, "tape cache capacity must be >= 1");
}

std::shared_ptr<const ExecutionTape>
TapeCache::get(const hw::Device &device, const circuit::Circuit &physical)
{
    const Key key{device.fingerprint(), physical.fingerprint()};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            order_.splice(order_.begin(), order_, it->second.second);
            return it->second.first;
        }
        ++misses_;
    }
    // Build outside the lock: concurrent misses on the *same* key may
    // build twice, but both results are identical and the duplicate is
    // simply dropped on insert — cheaper than holding every caller
    // behind one build.
    auto tape = std::make_shared<const ExecutionTape>(
        ExecutionTape::build(device, physical));
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end())
        return it->second.first;
    order_.push_front(key);
    entries_.emplace(key, std::make_pair(tape, order_.begin()));
    while (entries_.size() > capacity_) {
        entries_.erase(order_.back());
        order_.pop_back();
    }
    return tape;
}

std::size_t
TapeCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
TapeCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
TapeCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
TapeCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    order_.clear();
}

} // namespace qedm::sim
