/**
 * @file
 * Crash-safe experiment journal: append-only record stream + replay.
 *
 * A long EDM experiment must survive the process dying under it — an
 * OOM kill, a pre-emption, a power cut — without losing completed work
 * or, worse, silently changing its answer on the rerun. The journal
 * makes experiment execution crash-tolerant and *bit-reproducible*
 * across the crash boundary:
 *
 *   - Every durable fact is one self-checksummed record, written with
 *     a single write() followed by fsync(), so the on-disk stream is
 *     always a valid prefix plus at most one torn tail record.
 *   - The header fingerprints the (config, device, seed-root) triple;
 *     resume refuses to graft records onto a different run.
 *   - Batch records capture a work unit's merged outcome (attempts,
 *     exhaustion, counts); round records are commit points carrying
 *     the four policy PST/IST numbers bit-exactly plus the full
 *     DegradationReport. Wall-abandon records turn the inherently
 *     nondeterministic watchdog fire into a durable fact that resume
 *     and `--replay-faults` re-apply as a forced fault.
 *
 * Failure taxonomy (CheckError, pass "journal"): an unreadable header
 * is JournalHeaderInvalid; a checksum-bad or unknown-type record with
 * bytes after it is JournalCorruptRecord; a mismatched fingerprint is
 * JournalFingerprintMismatch. A torn or checksum-bad *final* record is
 * the expected crash artifact: replay stops before it and resume
 * truncates it away, redoing that batch.
 *
 * Record order in the file is the completion order of a concurrent
 * run and carries no meaning; replay indexes records by key with
 * last-write-wins, which is what makes resume independent of --jobs.
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "resilience/degradation.hpp"
#include "stats/counts.hpp"

namespace qedm::resilience {

/** Identity of the run a journal belongs to. */
struct JournalFingerprint
{
    /** Hash of the experiment configuration (see experimentFingerprint). */
    std::uint64_t config = 0;
    /** Hash of the target device (Device::fingerprint). */
    std::uint64_t device = 0;
    /** Root seed of the experiment's SeedSequence tree. */
    std::uint64_t seedRoot = 0;

    bool operator==(const JournalFingerprint &o) const
    {
        return config == o.config && device == o.device &&
               seedRoot == o.seedRoot;
    }
};

/** Which execution stage of a round a batch record belongs to. */
enum class JournalStage : std::uint8_t
{
    Members = 0,      ///< ensemble member execution
    BaselineEst = 1,  ///< best-by-ESP baseline run
    BaselinePost = 2, ///< best-by-PST baseline run
};

/** Primary key of one executed work unit. */
struct BatchKey
{
    std::uint32_t round = 0;
    JournalStage stage = JournalStage::Members;
    std::uint32_t member = 0;
    std::uint64_t batch = 0;

    bool operator<(const BatchKey &o) const
    {
        if (round != o.round)
            return round < o.round;
        if (stage != o.stage)
            return stage < o.stage;
        if (member != o.member)
            return member < o.member;
        return batch < o.batch;
    }
    bool operator==(const BatchKey &o) const
    {
        return round == o.round && stage == o.stage &&
               member == o.member && batch == o.batch;
    }
};

/** Durable outcome of one work unit. */
struct BatchRecord
{
    /** Attempts consumed (>= 1 when the unit executed at all). */
    int attempts = 0;
    /** True when every allowed attempt failed (unit lost). */
    bool exhausted = false;
    /** Merged counts when the unit succeeded; empty when lost. */
    std::optional<stats::Counts> counts;
};

/** Durable outcome of one completed experiment round (commit point). */
struct RoundRecord
{
    /**
     * The four policies' (ist, pst) pairs in fixed order: baselineEst,
     * baselinePost, edm, wedm. Stored bit-exactly (no text round-trip).
     */
    std::array<double, 8> policy{};
    /** Full degradation account of the round. */
    DegradationReport degradation;
};

/**
 * Append side: an open journal file. One write() + fsync() per record;
 * thread-safe (units complete concurrently). Move-only.
 */
class Journal
{
  public:
    /** Start a fresh journal at @p path (truncates), writing the header. */
    static Journal create(const std::string &path,
                          const JournalFingerprint &fp);

    /**
     * Reopen @p path for appending after a crash, discarding everything
     * past @p valid_bytes (the prefix a JournalReplay validated).
     */
    static Journal resume(const std::string &path,
                          std::uint64_t valid_bytes);

    Journal(Journal &&other) noexcept;
    Journal &operator=(Journal &&other) noexcept;
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;
    ~Journal();

    void recordBatch(const BatchKey &key, const BatchRecord &record);
    void recordWallAbandon(std::uint32_t round, const WallAbandon &event);
    void recordRound(std::uint32_t round, const RoundRecord &record);

  private:
    explicit Journal(int fd) : fd_(fd) {}
    void append(std::uint8_t type,
                const std::vector<std::uint8_t> &payload);

    int fd_ = -1;
    std::mutex mutex_;
};

/**
 * Read side: a parsed, validated journal. Loading never needs the
 * run's configuration — fingerprint validation is the caller's second
 * step (requireMatches) so tooling can inspect foreign journals.
 */
class JournalReplay
{
  public:
    /**
     * Parse @p path. Throws CheckError (pass "journal") with kind
     * JournalHeaderInvalid or JournalCorruptRecord; a torn final
     * record is tolerated and reported via truncatedTail().
     */
    static JournalReplay load(const std::string &path);

    const JournalFingerprint &fingerprint() const { return fp_; }

    /** Throw JournalFingerprintMismatch unless @p fp matches. */
    void requireMatches(const JournalFingerprint &fp) const;

    /** Byte length of the validated prefix (Journal::resume input). */
    std::uint64_t validBytes() const { return validBytes_; }

    /** True when a torn/checksum-bad final record was discarded. */
    bool truncatedTail() const { return truncatedTail_; }

    /** Completed unit for @p key, or nullptr. Last write wins. */
    const BatchRecord *findBatch(const BatchKey &key) const;

    /** Committed round @p round, or nullptr. Last write wins. */
    const RoundRecord *findRound(std::uint32_t round) const;

    /**
     * Recorded wall-clock abandonments for @p round, canonicalized to
     * the minimum abandoned batch per member and sorted by member —
     * ready to force through ResilienceConfig::forcedWallAbandons.
     */
    std::vector<WallAbandon> wallAbandons(std::uint32_t round) const;

    std::size_t batchCount() const { return batches_.size(); }
    std::size_t roundCount() const { return rounds_.size(); }

  private:
    JournalFingerprint fp_;
    std::uint64_t validBytes_ = 0;
    bool truncatedTail_ = false;
    std::map<BatchKey, BatchRecord> batches_;
    std::map<std::uint32_t, RoundRecord> rounds_;
    /** (round, member) -> min abandoned batch. */
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
        wallAbandons_;
};

} // namespace qedm::resilience
