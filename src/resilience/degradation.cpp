#include "resilience/degradation.hpp"

#include <sstream>

namespace qedm::resilience {

std::size_t
DegradationReport::droppedCount() const
{
    std::size_t dropped = 0;
    for (const MemberDegradation &m : members) {
        if (!m.kept)
            ++dropped;
    }
    return dropped;
}

std::string
DegradationReport::toString() const
{
    std::ostringstream os;
    if (!degraded()) {
        os << "resilience: all members healthy";
        if (retriesTotal > 0)
            os << " (" << retriesTotal << " retries absorbed)";
        os << "\n";
        return os.str();
    }
    os << "resilience: " << members.size()
       << " member(s) degraded, " << trialsLost << " trial(s) lost, "
       << trialsReassigned << " reassigned, " << retriesTotal
       << " retries\n";
    for (const MemberDegradation &m : members) {
        os << "  member " << m.member << ": "
           << faultKindName(m.cause) << " after " << m.completedShots
           << "/" << m.plannedShots << " trials ("
           << (m.kept ? "kept partial" : "dropped from merge");
        if (m.retries > 0)
            os << ", " << m.retries << " retries";
        os << ")\n";
    }
    if (!faults.empty()) {
        os << "  fault log:";
        for (const FaultEvent &f : faults) {
            os << " [" << faultKindName(f.kind) << " m" << f.member;
            if (f.batch != FaultEvent::kNoBatch)
                os << " b" << f.batch;
            if (f.attempt >= 0)
                os << " a" << f.attempt;
            os << "]";
        }
        os << "\n";
    }
    return os.str();
}

namespace {

std::string
formatEnsembleFailure(std::size_t total, std::size_t failed)
{
    std::ostringstream os;
    os << "ensemble execution failed: " << failed << " of " << total
       << " member(s) failed and no member cleared the "
          "minTrialsPerMember floor; no distribution to report";
    return os.str();
}

} // namespace

EnsembleFailedError::EnsembleFailedError(std::size_t total_members,
                                         std::size_t failed_members)
    : Error(formatEnsembleFailure(total_members, failed_members)),
      total_(total_members),
      failed_(failed_members)
{
}

} // namespace qedm::resilience
