#include "resilience/fault_injector.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qedm::resilience {
namespace {

// Subdomain keys under root.child(member): one per decision, so
// enabling one fault source never perturbs another's stream.
constexpr std::uint64_t kSubDropout = 0;
constexpr std::uint64_t kSubStaleness = 1;
constexpr std::uint64_t kSubSlow = 2;
constexpr std::uint64_t kSubTransient = 3;

bool
validProb(double p)
{
    return p >= 0.0 && p <= 1.0;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::QubitDropout:
        return "qubit-dropout";
      case FaultKind::CalibrationStaleness:
        return "calibration-staleness";
      case FaultKind::TransientTrialFailure:
        return "transient-trial-failure";
      case FaultKind::RetryExhausted:
        return "retry-exhausted";
      case FaultKind::SlowMember:
        return "slow-member";
      case FaultKind::DeadlineAbandoned:
        return "deadline-abandoned";
      case FaultKind::WallClockAbandoned:
        return "wall-clock-abandoned";
    }
    return "unknown";
}

bool
FaultConfig::any() const
{
    return dropoutProb > 0.0 || stalenessProb > 0.0 ||
           transientProb > 0.0 || slowProb > 0.0 ||
           !forcedDropouts.empty();
}

FaultInjector::FaultInjector(FaultConfig config, SeedSequence root)
    : config_(std::move(config)), root_(root)
{
    QEDM_REQUIRE(validProb(config_.dropoutProb) &&
                     validProb(config_.stalenessProb) &&
                     validProb(config_.transientProb) &&
                     validProb(config_.slowProb),
                 "fault probabilities must be in [0, 1]");
    QEDM_REQUIRE(config_.slowFactor >= 1.0,
                 "slowFactor must be >= 1");
    QEDM_REQUIRE(config_.batchMsPerShot >= 0.0,
                 "batchMsPerShot must be non-negative");
}

MemberFaultPlan
FaultInjector::memberPlan(std::size_t member,
                          std::uint64_t plannedShots) const
{
    MemberFaultPlan plan;
    const SeedSequence node = root_.child(member);

    const bool forced =
        std::find(config_.forcedDropouts.begin(),
                  config_.forcedDropouts.end(),
                  static_cast<int>(member)) !=
        config_.forcedDropouts.end();
    if (forced || config_.dropoutProb > 0.0) {
        Rng rng = node.child(kSubDropout).rng();
        const bool sampled = config_.dropoutProb > 0.0 &&
                             rng.bernoulli(config_.dropoutProb);
        if (forced || sampled) {
            plan.dropsOut = true;
            plan.dropoutTrial =
                plannedShots == 0 ? 0 : rng.uniformInt(plannedShots);
        }
    }
    if (config_.stalenessProb > 0.0) {
        Rng rng = node.child(kSubStaleness).rng();
        if (rng.bernoulli(config_.stalenessProb)) {
            plan.stale = true;
            plan.staleSeed = node.child(kSubStaleness).child(1).state();
        }
    }
    if (config_.slowProb > 0.0) {
        Rng rng = node.child(kSubSlow).rng();
        plan.slow = rng.bernoulli(config_.slowProb);
    }
    return plan;
}

bool
FaultInjector::transientFails(std::size_t member, std::uint64_t batch,
                              int attempt) const
{
    if (config_.transientProb <= 0.0)
        return false;
    Rng rng = root_.child(member)
                  .child(kSubTransient)
                  .child(batch)
                  .child(static_cast<std::uint64_t>(attempt))
                  .rng();
    return rng.bernoulli(config_.transientProb);
}

double
FaultInjector::virtualBatchMs(const MemberFaultPlan &plan,
                              std::uint64_t shots) const
{
    const double base =
        static_cast<double>(shots) * config_.batchMsPerShot;
    return plan.slow ? base * config_.slowFactor : base;
}

} // namespace qedm::resilience
