/**
 * @file
 * Deterministic fault injection for ensemble execution.
 *
 * EDM's value proposition is that the ensemble survives what a single
 * mapping cannot (Tannu & Qureshi, MICRO-52) — but proving that
 * requires making members fail on demand, reproducibly. The
 * FaultInjector models the mid-run failures a production EDM service
 * sees between calibration cycles:
 *
 *   - qubit dropout:          a member's physical qubits die mid-run;
 *                             trials completed before the dropout are
 *                             real, the rest never happen;
 *   - calibration staleness:  a member executes against a machine that
 *                             degraded after the published calibration
 *                             (hw::Calibration::staleJump), layered on
 *                             the per-round drift model;
 *   - transient trial failure: a shot batch fails retriably (queue
 *                             hiccup); retried under runtime::RetryPolicy;
 *   - slow member:            a member's virtual execution time blows
 *                             past the per-member deadline and it is
 *                             abandoned rather than stalling the
 *                             ensemble barrier.
 *
 * Every decision is a pure function of a SeedSequence stream keyed by
 * (member) or (member, batch, attempt) — never of wall-clock time or
 * scheduling order — so an identical (seed, fault config) replays
 * bit-identically at any --jobs value. "Time" for the deadline policy
 * is a virtual clock driven by per-batch costs from the same streams,
 * which is what makes hung-member abandonment testable at all.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace qedm::resilience {

/** The taxonomy of injectable (and reportable) fault kinds. */
enum class FaultKind
{
    QubitDropout,         ///< member qubits died mid-run
    CalibrationStaleness, ///< member ran against stale calibration
    TransientTrialFailure, ///< one batch attempt failed retriably
    RetryExhausted,       ///< a batch failed every allowed attempt
    SlowMember,           ///< member flagged slow (virtual time)
    DeadlineAbandoned,    ///< member abandoned at the trial deadline
    WallClockAbandoned,   ///< member abandoned by the wall watchdog
};

/** Stable diagnostic name ("qubit-dropout", ...). */
const char *faultKindName(FaultKind kind);

/** Fault model configuration. All probabilities default to 0 = off. */
struct FaultConfig
{
    /** Per-member probability its qubits drop out mid-run. */
    double dropoutProb = 0.0;
    /** Per-member probability it executes on stale calibration. */
    double stalenessProb = 0.0;
    /** Severity of the stale jump (Calibration::staleJump). */
    double stalenessSeverity = 0.5;
    /** Per-(batch, attempt) probability of a transient failure. */
    double transientProb = 0.0;
    /** Per-member probability it runs slowFactor times too slow. */
    double slowProb = 0.0;
    /** Virtual-time multiplier for slow members. */
    double slowFactor = 64.0;
    /** Virtual execution cost per trial, in milliseconds. */
    double batchMsPerShot = 0.01;
    /**
     * Members that deterministically drop out regardless of
     * dropoutProb (test and CLI hook: `--fail-member M`).
     */
    std::vector<int> forcedDropouts;

    /** True when any fault source is enabled. */
    bool any() const;
};

/** One injected fault, in the deterministic fault log. */
struct FaultEvent
{
    FaultKind kind;
    std::size_t member = 0;
    /** Batch index for batch-scoped kinds; kNoBatch otherwise. */
    std::uint64_t batch = kNoBatch;
    /** Attempt index for transient kinds; -1 otherwise. */
    int attempt = -1;

    static constexpr std::uint64_t kNoBatch = ~std::uint64_t(0);
};

/** The member-scoped fault decisions, made once per member. */
struct MemberFaultPlan
{
    bool dropsOut = false;
    /** Trial index at which the qubits die (< plannedShots). */
    std::uint64_t dropoutTrial = 0;
    bool stale = false;
    /** Seed for the stale calibration jump when stale. */
    std::uint64_t staleSeed = 0;
    bool slow = false;
};

/**
 * Seeded, deterministic fault oracle. Stateless after construction
 * and safe to query from any thread; all answers are pure functions
 * of (root stream, config, query key).
 */
class FaultInjector
{
  public:
    FaultInjector(FaultConfig config, SeedSequence root);

    const FaultConfig &config() const { return config_; }

    /** Member-scoped decisions for @p member with @p plannedShots. */
    MemberFaultPlan memberPlan(std::size_t member,
                               std::uint64_t plannedShots) const;

    /** Does attempt @p attempt of (member, batch) fail transiently? */
    bool transientFails(std::size_t member, std::uint64_t batch,
                        int attempt) const;

    /** Virtual execution cost of a batch of @p shots trials (ms). */
    double virtualBatchMs(const MemberFaultPlan &plan,
                          std::uint64_t shots) const;

  private:
    FaultConfig config_;
    SeedSequence root_;
};

} // namespace qedm::resilience
