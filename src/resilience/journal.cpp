#include "resilience/journal.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "check/check.hpp"
#include "common/error.hpp"

namespace qedm::resilience {

namespace {

// On-disk format (all integers little-endian):
//   header:  "QEDMJNL1" | version u32 | config u64 | device u64
//            | seedRoot u64
//   record:  len u32 | type u8 | payload[len] | fnv1a64(type+payload)
constexpr char kMagic[8] = {'Q', 'E', 'D', 'M', 'J', 'N', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;
constexpr std::uint8_t kBatchRecord = 1;
constexpr std::uint8_t kWallAbandonRecord = 2;
constexpr std::uint8_t kRoundRecord = 3;
// Frame-length sanity cap: a real record is a few KB; anything larger
// is a torn/garbage length field.
constexpr std::uint32_t kMaxPayload = 1u << 28;

std::uint64_t
fnv1a(std::uint8_t type, const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 14695981039346656037ull;
    const auto mix = [&h](std::uint8_t byte) {
        h ^= byte;
        h *= 1099511628211ull;
    };
    mix(type);
    for (std::size_t i = 0; i < n; ++i)
        mix(data[i]);
    return h;
}

/** Little-endian payload builder. */
class Writer
{
  public:
    void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

[[noreturn]] void
throwCorrupt(const std::string &why)
{
    throw check::CheckError("journal",
                            check::CheckErrorKind::JournalCorruptRecord,
                            why);
}

/** Bounds-checked little-endian payload reader. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t n) : data_(data), n_(n)
    {
    }

    std::uint8_t u8()
    {
        need(1);
        return data_[pos_++];
    }
    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(data_[pos_++]) << (8 * i);
        return v;
    }
    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(data_[pos_++]) << (8 * i);
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    double f64() { return std::bit_cast<double>(u64()); }

    bool exhausted() const { return pos_ == n_; }

  private:
    void need(std::size_t k) const
    {
        if (n_ - pos_ < k)
            throwCorrupt("journal record payload is shorter than its "
                         "declared contents");
    }

    const std::uint8_t *data_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

void
putCounts(Writer &w, const std::optional<stats::Counts> &counts)
{
    w.u8(counts.has_value() ? 1 : 0);
    if (!counts)
        return;
    w.i32(counts->width());
    w.u64(counts->entries().size());
    for (const auto &[outcome, n] : counts->entries()) {
        w.u64(outcome);
        w.u64(n);
    }
}

std::optional<stats::Counts>
getCounts(Reader &r)
{
    if (r.u8() == 0)
        return std::nullopt;
    const int width = r.i32();
    if (width < 1 || width > 20)
        throwCorrupt("journal batch record has an invalid counts width");
    stats::Counts counts(width);
    const std::uint64_t entries = r.u64();
    for (std::uint64_t i = 0; i < entries; ++i) {
        const Outcome outcome = r.u64();
        counts.add(outcome, r.u64());
    }
    return counts;
}

void
putReport(Writer &w, const DegradationReport &report)
{
    w.u64(report.faults.size());
    for (const FaultEvent &e : report.faults) {
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.u32(static_cast<std::uint32_t>(e.member));
        w.u64(e.batch);
        w.i32(e.attempt);
    }
    w.u64(report.members.size());
    for (const MemberDegradation &m : report.members) {
        w.u32(static_cast<std::uint32_t>(m.member));
        w.u8(static_cast<std::uint8_t>(m.cause));
        w.u64(m.plannedShots);
        w.u64(m.completedShots);
        w.u8(m.kept ? 1 : 0);
        w.i32(m.retries);
    }
    w.u64(report.trialsLost);
    w.u64(report.trialsReassigned);
    w.i32(report.retriesTotal);
}

FaultKind
getFaultKind(Reader &r)
{
    const std::uint8_t raw = r.u8();
    if (raw > static_cast<std::uint8_t>(FaultKind::WallClockAbandoned))
        throwCorrupt("journal round record names an unknown fault kind");
    return static_cast<FaultKind>(raw);
}

DegradationReport
getReport(Reader &r)
{
    DegradationReport report;
    const std::uint64_t faults = r.u64();
    report.faults.reserve(faults);
    for (std::uint64_t i = 0; i < faults; ++i) {
        FaultEvent e;
        e.kind = getFaultKind(r);
        e.member = r.u32();
        e.batch = r.u64();
        e.attempt = r.i32();
        report.faults.push_back(e);
    }
    const std::uint64_t members = r.u64();
    report.members.reserve(members);
    for (std::uint64_t i = 0; i < members; ++i) {
        MemberDegradation m;
        m.member = r.u32();
        m.cause = getFaultKind(r);
        m.plannedShots = r.u64();
        m.completedShots = r.u64();
        m.kept = r.u8() != 0;
        m.retries = r.i32();
        report.members.push_back(m);
    }
    report.trialsLost = r.u64();
    report.trialsReassigned = r.u64();
    report.retriesTotal = r.i32();
    return report;
}

void
writeAll(int fd, const std::uint8_t *data, std::size_t n)
{
    std::size_t done = 0;
    while (done < n) {
        const ssize_t wrote = ::write(fd, data + done, n - done);
        QEDM_REQUIRE(wrote > 0, "journal write failed");
        done += static_cast<std::size_t>(wrote);
    }
}

[[noreturn]] void
throwHeader(const std::string &why)
{
    throw check::CheckError("journal",
                            check::CheckErrorKind::JournalHeaderInvalid,
                            why);
}

} // namespace

Journal
Journal::create(const std::string &path, const JournalFingerprint &fp)
{
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    QEDM_REQUIRE(fd >= 0, "cannot create journal file: " + path);
    Journal journal(fd);
    Writer w;
    for (const char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kVersion);
    w.u64(fp.config);
    w.u64(fp.device);
    w.u64(fp.seedRoot);
    writeAll(fd, w.bytes().data(), w.bytes().size());
    QEDM_REQUIRE(::fsync(fd) == 0, "journal fsync failed");
    return journal;
}

Journal
Journal::resume(const std::string &path, std::uint64_t valid_bytes)
{
    QEDM_REQUIRE(valid_bytes >= kHeaderBytes,
                 "journal resume offset is inside the header");
    const int fd = ::open(path.c_str(), O_WRONLY);
    QEDM_REQUIRE(fd >= 0, "cannot reopen journal file: " + path);
    Journal journal(fd);
    QEDM_REQUIRE(::ftruncate(fd, static_cast<off_t>(valid_bytes)) == 0,
                 "cannot truncate journal tail");
    QEDM_REQUIRE(::lseek(fd, 0, SEEK_END) >= 0,
                 "cannot seek journal to its end");
    QEDM_REQUIRE(::fsync(fd) == 0, "journal fsync failed");
    return journal;
}

Journal::Journal(Journal &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{
}

Journal &
Journal::operator=(Journal &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

Journal::~Journal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Journal::append(std::uint8_t type, const std::vector<std::uint8_t> &payload)
{
    QEDM_ASSERT(payload.size() < kMaxPayload, "journal record too large");
    Writer frame;
    frame.reserve(4 + 1 + payload.size() + 8);
    frame.u32(static_cast<std::uint32_t>(payload.size()));
    frame.u8(type);
    for (const std::uint8_t byte : payload)
        frame.u8(byte);
    frame.u64(fnv1a(type, payload.data(), payload.size()));
    const std::lock_guard<std::mutex> lock(mutex_);
    QEDM_REQUIRE(fd_ >= 0, "journal is closed");
    // One write() per record keeps the crash model simple: the file is
    // a valid prefix plus at most one torn tail frame.
    writeAll(fd_, frame.bytes().data(), frame.bytes().size());
    QEDM_REQUIRE(::fsync(fd_) == 0, "journal fsync failed");
}

void
Journal::recordBatch(const BatchKey &key, const BatchRecord &record)
{
    Writer w;
    w.u32(key.round);
    w.u8(static_cast<std::uint8_t>(key.stage));
    w.u32(key.member);
    w.u64(key.batch);
    w.i32(record.attempts);
    w.u8(record.exhausted ? 1 : 0);
    putCounts(w, record.counts);
    append(kBatchRecord, w.bytes());
}

void
Journal::recordWallAbandon(std::uint32_t round, const WallAbandon &event)
{
    Writer w;
    w.u32(round);
    w.u32(static_cast<std::uint32_t>(event.member));
    w.u64(event.batch);
    append(kWallAbandonRecord, w.bytes());
}

void
Journal::recordRound(std::uint32_t round, const RoundRecord &record)
{
    Writer w;
    w.u32(round);
    for (const double v : record.policy)
        w.f64(v);
    putReport(w, record.degradation);
    append(kRoundRecord, w.bytes());
}

JournalReplay
JournalReplay::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throwHeader("cannot open journal file: " + path);
    std::vector<std::uint8_t> data(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());

    JournalReplay replay;
    if (data.size() < kHeaderBytes)
        throwHeader("journal file is shorter than its header");
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0)
        throwHeader("journal magic bytes do not match");
    {
        Reader r(data.data() + sizeof(kMagic),
                 kHeaderBytes - sizeof(kMagic));
        const std::uint32_t version = r.u32();
        if (version != kVersion)
            throwHeader("unsupported journal version " +
                        std::to_string(version));
        replay.fp_.config = r.u64();
        replay.fp_.device = r.u64();
        replay.fp_.seedRoot = r.u64();
    }

    std::uint64_t offset = kHeaderBytes;
    while (offset < data.size()) {
        const std::uint64_t remaining = data.size() - offset;
        // Frame = len u32 + type u8 + payload + checksum u64. Anything
        // that does not fully fit is the torn tail of a crashed write.
        if (remaining < 4)
            break;
        Reader lenReader(data.data() + offset, 4);
        const std::uint32_t len = lenReader.u32();
        if (len >= kMaxPayload || remaining < 4ull + 1 + len + 8)
            break;
        const std::uint8_t type = data[offset + 4];
        const std::uint8_t *payload = data.data() + offset + 5;
        Reader sumReader(payload + len, 8);
        const std::uint64_t stored = sumReader.u64();
        const std::uint64_t frame = 4ull + 1 + len + 8;
        const bool last = offset + frame == data.size();
        if (stored != fnv1a(type, payload, len)) {
            if (last)
                break; // torn tail: checksum written partially
            throwCorrupt("journal record checksum mismatch mid-stream");
        }
        Reader r(payload, len);
        switch (type) {
          case kBatchRecord: {
            BatchKey key;
            key.round = r.u32();
            const std::uint8_t stage = r.u8();
            if (stage >
                static_cast<std::uint8_t>(JournalStage::BaselinePost))
                throwCorrupt("journal batch record names an unknown "
                             "stage");
            key.stage = static_cast<JournalStage>(stage);
            key.member = r.u32();
            key.batch = r.u64();
            BatchRecord record;
            record.attempts = r.i32();
            record.exhausted = r.u8() != 0;
            record.counts = getCounts(r);
            replay.batches_.insert_or_assign(key, std::move(record));
            break;
          }
          case kWallAbandonRecord: {
            const std::uint32_t round = r.u32();
            const std::uint32_t member = r.u32();
            const std::uint64_t batch = r.u64();
            auto [it, inserted] = replay.wallAbandons_.try_emplace(
                {round, member}, batch);
            if (!inserted && batch < it->second)
                it->second = batch;
            break;
          }
          case kRoundRecord: {
            const std::uint32_t round = r.u32();
            RoundRecord record;
            for (double &v : record.policy)
                v = r.f64();
            record.degradation = getReport(r);
            replay.rounds_.insert_or_assign(round, std::move(record));
            break;
          }
          default:
            throwCorrupt("journal record has an unknown type");
        }
        if (!r.exhausted())
            throwCorrupt("journal record payload has trailing bytes");
        offset += frame;
    }
    replay.validBytes_ = offset;
    replay.truncatedTail_ = offset < data.size();
    return replay;
}

void
JournalReplay::requireMatches(const JournalFingerprint &fp) const
{
    if (fp_ == fp)
        return;
    throw check::CheckError(
        "journal", check::CheckErrorKind::JournalFingerprintMismatch,
        "journal was recorded by a different run (config/device/seed "
        "fingerprints do not match)");
}

const BatchRecord *
JournalReplay::findBatch(const BatchKey &key) const
{
    const auto it = batches_.find(key);
    return it == batches_.end() ? nullptr : &it->second;
}

const RoundRecord *
JournalReplay::findRound(std::uint32_t round) const
{
    const auto it = rounds_.find(round);
    return it == rounds_.end() ? nullptr : &it->second;
}

std::vector<WallAbandon>
JournalReplay::wallAbandons(std::uint32_t round) const
{
    std::vector<WallAbandon> result;
    for (const auto &[key, batch] : wallAbandons_) {
        if (key.first != round)
            continue;
        result.push_back({key.second, batch});
    }
    return result;
}

} // namespace qedm::resilience
