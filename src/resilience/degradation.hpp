/**
 * @file
 * Graceful-degradation policy types for faulted ensemble runs.
 *
 * When a member fails mid-run the ensemble must keep answering with
 * honest statistics: completed trials are kept when they clear the
 * minTrialsPerMember floor (otherwise the member is dropped from the
 * merge entirely), surviving healthy members absorb the remaining
 * trial budget, and EDM/WEDM merge weights are renormalized over the
 * members that actually contribute. The DegradationReport records
 * exactly what happened — which members failed and why, how many
 * trials were lost and reassigned, how many retries were consumed,
 * and the full deterministic fault log — and is threaded up through
 * EdmResult / ExperimentSummary to the CLI.
 *
 * Everything here is bookkeeping: when ResilienceConfig::active() is
 * false the pipeline takes its original code path, with no injector,
 * no retry state, and no per-unit bookkeeping allocated at all.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "resilience/fault_injector.hpp"
#include "runtime/clock.hpp"

namespace qedm::resilience {

/**
 * One wall-clock abandonment fact: member was cut off from batch
 * @p batch onward. Recorded when the live watchdog fires; replayed as
 * a forced fault so the nondeterministic wall-clock decision becomes
 * reproducible (see runtime/watchdog.hpp).
 */
struct WallAbandon
{
    std::size_t member = 0;
    std::uint64_t batch = 0;
};

/** Resilience knobs for one pipeline execution. */
struct ResilienceConfig
{
    /** Fault model (all-off by default). */
    FaultConfig faults;
    /** Retries allowed per shot batch beyond the first attempt. */
    int retryMax = 2;
    /** Backoff base for batch retries (ms); 0 = no sleeping. */
    double backoffBaseMs = 0.0;
    /**
     * Virtual-time budget per member (ms); a member whose cumulative
     * batch cost exceeds it is abandoned at the batch boundary.
     * 0 = unlimited.
     */
    double memberDeadlineMs = 0.0;
    /**
     * Floor below which a failed member's completed trials are
     * discarded instead of merged (0 = keep any non-empty partial).
     */
    std::uint64_t minTrialsPerMember = 0;
    /**
     * Symmetric jitter fraction applied to retry backoff delays,
     * drawn from the unit's own seed stream (see RetryPolicy).
     */
    double backoffJitter = 0.0;
    /**
     * Wall-clock budget per member (ms); unlike memberDeadlineMs this
     * runs on real time via the watchdog and is inherently
     * nondeterministic — fires are recorded so replay/resume can force
     * them. 0 = no watchdog.
     */
    double wallDeadlineMs = 0.0;
    /**
     * Time source for the watchdog and retry backoff; null means the
     * real steadyClock(). Tests inject a ManualClock here.
     */
    const runtime::Clock *clock = nullptr;
    /**
     * Wall abandonments to re-apply as forced faults (from a journal
     * being resumed or replayed). Each entry cuts its member off from
     * the given batch onward, exactly as the recorded live fire did.
     */
    std::vector<WallAbandon> forcedWallAbandons;

    /**
     * True when the resilient execution path must run. Faults are the
     * only simulated failure source, but the wall watchdog and forced
     * wall abandons also require per-unit bookkeeping, so any of the
     * three routes execution through the resilient path.
     */
    bool active() const
    {
        return faults.any() || wallDeadlineMs > 0.0 ||
               !forcedWallAbandons.empty();
    }

    /** The effective time source (injected or real). */
    const runtime::Clock &effectiveClock() const
    {
        return clock != nullptr ? *clock : runtime::steadyClock();
    }
};

/** Outcome of one failed or degraded ensemble member. */
struct MemberDegradation
{
    std::size_t member = 0;
    /** Primary cause (dropout > deadline > retry exhaustion). */
    FaultKind cause = FaultKind::QubitDropout;
    std::uint64_t plannedShots = 0;
    /** Trials that completed before the member failed. */
    std::uint64_t completedShots = 0;
    /** True when the partial trials cleared the floor and merged. */
    bool kept = false;
    /** Retries consumed across the member's batches. */
    int retries = 0;
};

/** Full account of one degraded ensemble execution. */
struct DegradationReport
{
    /** Deterministic fault log, in (member, batch, attempt) order. */
    std::vector<FaultEvent> faults;
    /** Failed/degraded members (empty = fully healthy run). */
    std::vector<MemberDegradation> members;
    /** Trials lost to faults and not recovered by reassignment. */
    std::uint64_t trialsLost = 0;
    /** Trials reassigned to and completed by surviving members. */
    std::uint64_t trialsReassigned = 0;
    /** Retries consumed across all members and batches. */
    int retriesTotal = 0;

    /** Did any member fail or lose trials? */
    bool degraded() const { return !members.empty(); }

    /** Members whose results were dropped from the merge. */
    std::size_t droppedCount() const;

    /** Human-readable multi-line summary (CLI output). */
    std::string toString() const;
};

/**
 * Structured failure: every ensemble member failed and nothing
 * cleared the keep floor, so there is no distribution to report.
 */
class EnsembleFailedError : public Error
{
  public:
    EnsembleFailedError(std::size_t total_members,
                        std::size_t failed_members);

    std::size_t totalMembers() const { return total_; }
    std::size_t failedMembers() const { return failed_; }

  private:
    std::size_t total_;
    std::size_t failed_;
};

} // namespace qedm::resilience
