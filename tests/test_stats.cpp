/**
 * @file
 * Unit tests for qedm_stats: counts, distributions, and the paper's
 * metrics (PST, IST, KL divergence including the Table-2 worked
 * example, WEDM weights).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "stats/counts.hpp"
#include "stats/distribution.hpp"
#include "stats/metrics.hpp"

namespace qedm::stats {
namespace {

TEST(Counts, AddAndTotal)
{
    Counts c(3);
    c.add(5);
    c.add(5, 2);
    c.add(0);
    EXPECT_EQ(c.total(), 4u);
    EXPECT_EQ(c.count(5), 3u);
    EXPECT_EQ(c.count(0), 1u);
    EXPECT_EQ(c.count(7), 0u);
    EXPECT_EQ(c.distinct(), 2u);
}

TEST(Counts, RejectsOutOfRangeOutcome)
{
    Counts c(3);
    EXPECT_THROW(c.add(8), UserError);
    EXPECT_THROW(Counts(0), UserError);
    EXPECT_THROW(Counts(21), UserError);
}

TEST(Counts, MergeAccumulates)
{
    Counts a(2), b(2);
    a.add(1, 5);
    b.add(1, 3);
    b.add(2, 7);
    a.merge(b);
    EXPECT_EQ(a.count(1), 8u);
    EXPECT_EQ(a.count(2), 7u);
    EXPECT_EQ(a.total(), 15u);
}

TEST(Counts, MergeRejectsWidthMismatch)
{
    Counts a(2), b(3);
    EXPECT_THROW(a.merge(b), UserError);
}

TEST(Counts, SortedByCountDescending)
{
    Counts c(3);
    c.add(1, 5);
    c.add(2, 9);
    c.add(3, 5);
    const auto sorted = c.sortedByCount();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].first, 2u);
    // Ties broken by outcome value.
    EXPECT_EQ(sorted[1].first, 1u);
    EXPECT_EQ(sorted[2].first, 3u);
}

TEST(Counts, ToStringShowsBitstrings)
{
    Counts c(3);
    c.add(5, 2);
    EXPECT_NE(c.toString().find("101: 2"), std::string::npos);
}

TEST(Distribution, FromCountsNormalizes)
{
    Counts c(2);
    c.add(0, 1);
    c.add(3, 3);
    const auto d = Distribution::fromCounts(c);
    EXPECT_DOUBLE_EQ(d.prob(0), 0.25);
    EXPECT_DOUBLE_EQ(d.prob(3), 0.75);
    EXPECT_TRUE(d.isNormalized());
}

TEST(Distribution, FromCountsRejectsEmpty)
{
    Counts c(2);
    EXPECT_THROW(Distribution::fromCounts(c), UserError);
}

TEST(Distribution, UniformAndPointMass)
{
    const auto u = Distribution::uniform(3);
    EXPECT_DOUBLE_EQ(u.prob(0), 1.0 / 8.0);
    EXPECT_TRUE(u.isNormalized());
    EXPECT_NEAR(u.relativeStdDev(), 0.0, 1e-12);

    const auto p = Distribution::pointMass(3, 5);
    EXPECT_DOUBLE_EQ(p.prob(5), 1.0);
    EXPECT_EQ(p.mode(), 5u);
}

TEST(Distribution, FromProbabilitiesValidates)
{
    EXPECT_THROW(Distribution::fromProbabilities({0.5, 0.5, 0.0}),
                 UserError);
    EXPECT_THROW(Distribution::fromProbabilities({0.5, -0.5}),
                 UserError);
    const auto d = Distribution::fromProbabilities({0.25, 0.75});
    EXPECT_EQ(d.width(), 1);
}

TEST(Distribution, NormalizeScalesToOne)
{
    Distribution d(2);
    d.setProb(0, 2.0);
    d.setProb(1, 6.0);
    d.normalize();
    EXPECT_DOUBLE_EQ(d.prob(0), 0.25);
    EXPECT_DOUBLE_EQ(d.prob(1), 0.75);
    Distribution zero(2);
    EXPECT_THROW(zero.normalize(), UserError);
}

TEST(Distribution, ModeAndTopK)
{
    const auto d =
        Distribution::fromProbabilities({0.1, 0.4, 0.3, 0.2});
    EXPECT_EQ(d.mode(), 1u);
    const auto top = d.topK(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].first, 1u);
    EXPECT_EQ(top[1].first, 2u);
}

TEST(Distribution, EntropyKnownValues)
{
    EXPECT_NEAR(Distribution::uniform(3).entropy(), std::log(8.0),
                1e-12);
    EXPECT_NEAR(Distribution::pointMass(3, 1).entropy(), 0.0, 1e-12);
    const auto d = Distribution::fromProbabilities({0.5, 0.5});
    EXPECT_NEAR(d.entropy(), std::log(2.0), 1e-12);
}

TEST(Distribution, SampleMatchesProbabilities)
{
    const auto d =
        Distribution::fromProbabilities({0.1, 0.2, 0.3, 0.4});
    Rng rng(5);
    const auto counts = d.sample(rng, 100000);
    EXPECT_EQ(counts.total(), 100000u);
    for (Outcome o = 0; o < 4; ++o) {
        EXPECT_NEAR(counts.count(o) / 1e5, d.prob(o), 0.01)
            << "outcome " << o;
    }
}

TEST(Distribution, AccumulateAndScale)
{
    Distribution a(1), b(1);
    a.setProb(0, 0.5);
    b.setProb(1, 1.0);
    a.accumulate(b, 0.5);
    EXPECT_DOUBLE_EQ(a.prob(0), 0.5);
    EXPECT_DOUBLE_EQ(a.prob(1), 0.5);
    a.scale(2.0);
    EXPECT_DOUBLE_EQ(a.prob(1), 1.0);
    Distribution c(2);
    EXPECT_THROW(a.accumulate(c), UserError);
}

TEST(Merge, UniformIsPlainAverage)
{
    const auto a = Distribution::fromProbabilities({1.0, 0.0});
    const auto b = Distribution::fromProbabilities({0.0, 1.0});
    const auto m = mergeUniform({a, b});
    EXPECT_DOUBLE_EQ(m.prob(0), 0.5);
    EXPECT_DOUBLE_EQ(m.prob(1), 0.5);
}

TEST(Merge, WeightedRespectsWeights)
{
    const auto a = Distribution::fromProbabilities({1.0, 0.0});
    const auto b = Distribution::fromProbabilities({0.0, 1.0});
    const auto m = mergeWeighted({a, b}, {3.0, 1.0});
    EXPECT_DOUBLE_EQ(m.prob(0), 0.75);
    EXPECT_DOUBLE_EQ(m.prob(1), 0.25);
}

TEST(Merge, RejectsBadInputs)
{
    const auto a = Distribution::uniform(1);
    EXPECT_THROW(mergeUniform({}), UserError);
    EXPECT_THROW(mergeWeighted({a}, {1.0, 2.0}), UserError);
    EXPECT_THROW(mergeWeighted({a}, {-1.0}), UserError);
    EXPECT_THROW(mergeWeighted({a}, {0.0}), UserError);
}

TEST(Metrics, PstIsCorrectProbability)
{
    const auto d =
        Distribution::fromProbabilities({0.1, 0.2, 0.3, 0.4});
    EXPECT_DOUBLE_EQ(pst(d, 2), 0.3);
}

TEST(Metrics, IstRatioOfCorrectToStrongestWrong)
{
    const auto d =
        Distribution::fromProbabilities({0.1, 0.2, 0.3, 0.4});
    // correct = 3: 0.4 / 0.3
    EXPECT_NEAR(ist(d, 3), 0.4 / 0.3, 1e-12);
    // correct = 0: 0.1 / 0.4
    EXPECT_NEAR(ist(d, 0), 0.25, 1e-12);
    // Point mass: no wrong answer at all -> infinite strength.
    EXPECT_TRUE(std::isinf(ist(Distribution::pointMass(2, 1), 1)));
}

TEST(Metrics, KlDivergenceTable2Example)
{
    // The paper's Appendix-B worked example:
    // P = (0.2, 0.3, 0.4, 0.1), Q = uniform(4). The paper prints
    // 0.046 / 0.052 and writes "ln", but those numbers are the
    // base-10 values; in nats they are 0.1064 / 0.1218.
    const auto p =
        Distribution::fromProbabilities({0.2, 0.3, 0.4, 0.1});
    const auto q = Distribution::uniform(2);
    EXPECT_NEAR(klDivergence(p, q, 0.0), 0.1064, 5e-4);
    EXPECT_NEAR(klDivergence(q, p, 0.0), 0.1218, 5e-4);
    EXPECT_NEAR(klDivergence(p, q, 0.0) / std::log(10.0), 0.0462,
                5e-4);
    EXPECT_NEAR(klDivergence(q, p, 0.0) / std::log(10.0), 0.0529,
                5e-4);
    // Symmetric KL is the sum of both directions (Eq. 4).
    EXPECT_NEAR(symmetricKl(p, q, 0.0),
                klDivergence(p, q, 0.0) + klDivergence(q, p, 0.0),
                1e-12);
}

TEST(Metrics, KlOfIdenticalDistributionsIsZero)
{
    const auto p =
        Distribution::fromProbabilities({0.2, 0.3, 0.4, 0.1});
    EXPECT_NEAR(klDivergence(p, p, 0.0), 0.0, 1e-12);
    EXPECT_NEAR(symmetricKl(p, p), 0.0, 1e-9);
}

TEST(Metrics, KlRequiresSmoothingWithZeros)
{
    const auto p = Distribution::pointMass(1, 0);
    const auto q = Distribution::pointMass(1, 1);
    EXPECT_THROW(klDivergence(p, q, 0.0), UserError);
    EXPECT_GT(klDivergence(p, q, 1e-6), 1.0);
}

TEST(Metrics, KlIsAsymmetric)
{
    const auto p =
        Distribution::fromProbabilities({0.9, 0.05, 0.03, 0.02});
    const auto q = Distribution::uniform(2);
    EXPECT_NE(klDivergence(p, q, 0.0), klDivergence(q, p, 0.0));
}

TEST(Metrics, JensenShannonBoundedAndSymmetric)
{
    const auto p = Distribution::pointMass(2, 0);
    const auto q = Distribution::pointMass(2, 3);
    const double js = jensenShannon(p, q);
    EXPECT_NEAR(js, std::log(2.0), 1e-12); // maximal for disjoint
    EXPECT_DOUBLE_EQ(jensenShannon(q, p), js);
    EXPECT_NEAR(jensenShannon(p, p), 0.0, 1e-12);
}

TEST(Metrics, WedmWeightsUniformForIdenticalMembers)
{
    const auto d =
        Distribution::fromProbabilities({0.25, 0.25, 0.25, 0.25});
    const auto w = wedmWeights({d, d, d});
    ASSERT_EQ(w.size(), 3u);
    for (double x : w)
        EXPECT_NEAR(x, 1.0 / 3.0, 1e-9);
}

TEST(Metrics, WedmWeightsFavorDivergentMember)
{
    const auto a =
        Distribution::fromProbabilities({0.9, 0.1, 0.0, 0.0});
    const auto b =
        Distribution::fromProbabilities({0.88, 0.12, 0.0, 0.0});
    const auto c =
        Distribution::fromProbabilities({0.0, 0.0, 0.1, 0.9});
    const auto w = wedmWeights({a, b, c});
    ASSERT_EQ(w.size(), 3u);
    EXPECT_GT(w[2], w[0]);
    EXPECT_GT(w[2], w[1]);
    EXPECT_NEAR(w[0] + w[1] + w[2], 1.0, 1e-12);
}

TEST(Metrics, PairwiseDivergenceSymmetricZeroDiagonal)
{
    const auto a = Distribution::fromProbabilities({0.7, 0.3});
    const auto b = Distribution::fromProbabilities({0.2, 0.8});
    const auto m = pairwiseDivergence({a, b});
    EXPECT_DOUBLE_EQ(m[0][0], 0.0);
    EXPECT_DOUBLE_EQ(m[1][1], 0.0);
    EXPECT_DOUBLE_EQ(m[0][1], m[1][0]);
    EXPECT_GT(m[0][1], 0.0);
}

TEST(Metrics, MeanOffDiagonal)
{
    const std::vector<std::vector<double>> m{{0.0, 2.0}, {4.0, 0.0}};
    EXPECT_DOUBLE_EQ(meanOffDiagonal(m), 3.0);
    EXPECT_DOUBLE_EQ(meanOffDiagonal({{0.0}}), 0.0);
}

TEST(Metrics, Median)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
    EXPECT_THROW(median({}), UserError);
}

TEST(Metrics, IsNearUniform)
{
    EXPECT_TRUE(isNearUniform(Distribution::uniform(4)));
    EXPECT_FALSE(isNearUniform(Distribution::pointMass(4, 3)));
}

// Property sweep: merging any distribution with itself is identity,
// and WEDM weights always sum to one.
class MergePropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MergePropertyTest, SelfMergeIsIdentityAndWeightsNormalized)
{
    Rng rng(GetParam());
    Distribution d(3);
    for (Outcome o = 0; o < 8; ++o)
        d.setProb(o, rng.uniform());
    d.normalize();

    const auto merged = mergeUniform({d, d, d, d});
    for (Outcome o = 0; o < 8; ++o)
        EXPECT_NEAR(merged.prob(o), d.prob(o), 1e-12);

    Distribution e(3);
    for (Outcome o = 0; o < 8; ++o)
        e.setProb(o, rng.uniform());
    e.normalize();
    const auto w = wedmWeights({d, e});
    EXPECT_NEAR(w[0] + w[1], 1.0, 1e-12);
    // Two-member WEDM is symmetric: equal weights.
    EXPECT_NEAR(w[0], 0.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergePropertyTest,
                         ::testing::Range(1, 21));

// Property sweep: IST > 1 iff the correct outcome is the unique mode.
class IstPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(IstPropertyTest, IstAboveOneIffUniqueMode)
{
    Rng rng(100 + GetParam());
    Distribution d(4);
    for (Outcome o = 0; o < 16; ++o)
        d.setProb(o, rng.uniform());
    d.normalize();
    const Outcome correct = rng.uniformInt(16);
    const double s = ist(d, correct);
    if (s > 1.0) {
        EXPECT_EQ(d.mode(), correct);
    } else if (s < 1.0) {
        EXPECT_NE(d.mode(), correct);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IstPropertyTest,
                         ::testing::Range(1, 31));

} // namespace
} // namespace qedm::stats
