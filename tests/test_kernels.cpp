/**
 * @file
 * Regression tests for the statevector kernel rewrite (DESIGN.md §12).
 *
 * Three layers of protection:
 *  - golden fixed-seed outputs captured from the pre-rewrite engine
 *    (shot counts on stochastic and deterministic tapes, and full
 *    EDM/WEDM merge probabilities at --jobs 1 and 4), asserted
 *    bit-identical — the kernels' RNG draw-order contract;
 *  - the straightforward reference kernels (full-scan loops the
 *    rewrite replaced) copied here verbatim and checked equal to the
 *    optimized kernels on random states, for every matrix structure
 *    class the dispatcher distinguishes (±0 differences are invisible
 *    to EXPECT_EQ on doubles, matching the contract);
 *  - trajectory-vs-density-matrix cross-validation: on a
 *    deterministic (coherent-only, readout-free) tape, replaying the
 *    pre-materialized tape matrices on a StateVector must reproduce
 *    the exact DensityMatrix distribution to 1e-12.
 */

#include <gtest/gtest.h>

#include <array>
#include <complex>
#include <cstdint>
#include <map>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "hw/device.hpp"
#include "sim/channels.hpp"
#include "sim/execution_tape.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"
#include "stats/counts.hpp"
#include "transpile/transpiler.hpp"

namespace qedm {
namespace {

using circuit::Complex;
using circuit::OpKind;

// ---------------------------------------------------------------------
// Reference kernels: the pre-rewrite full-scan implementations.
// ---------------------------------------------------------------------

void
refApply1q(std::vector<Complex> &amps, const std::array<Complex, 4> &m,
           int q)
{
    const std::size_t mask = std::size_t(1) << q;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        if (i & mask)
            continue;
        const Complex a = amps[i];
        const Complex b = amps[i | mask];
        amps[i] = m[0] * a + m[1] * b;
        amps[i | mask] = m[2] * a + m[3] * b;
    }
}

void
refApply2q(std::vector<Complex> &amps, const std::array<Complex, 16> &m,
           int q0, int q1)
{
    const std::size_t m0 = std::size_t(1) << q0;
    const std::size_t m1 = std::size_t(1) << q1;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        if (i & (m0 | m1))
            continue;
        const std::size_t idx[4] = {i, i | m1, i | m0, i | m0 | m1};
        Complex v[4];
        for (int k = 0; k < 4; ++k)
            v[k] = amps[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Complex acc(0.0);
            for (int c = 0; c < 4; ++c)
                acc += m[r * 4 + c] * v[c];
            amps[idx[r]] = acc;
        }
    }
}

double
refNorm(const std::vector<Complex> &amps)
{
    double n = 0.0;
    for (const Complex &a : amps)
        n += std::norm(a);
    return n;
}

void
refNormalize(std::vector<Complex> &amps)
{
    const double inv = 1.0 / std::sqrt(refNorm(amps));
    for (Complex &a : amps)
        a *= inv;
}

std::size_t
refKraus1q(std::vector<Complex> &amps,
           const std::vector<std::array<Complex, 4>> &kraus, int q,
           Rng &rng)
{
    const std::size_t mask = std::size_t(1) << q;
    const double r = rng.uniform() * refNorm(amps);
    double acc = 0.0;
    std::size_t pick = kraus.size() - 1;
    for (std::size_t k = 0; k + 1 < kraus.size(); ++k) {
        const auto &m = kraus[k];
        double p = 0.0;
        for (std::size_t i = 0; i < amps.size(); ++i) {
            if (i & mask)
                continue;
            const Complex a = amps[i];
            const Complex b = amps[i | mask];
            p += std::norm(m[0] * a + m[1] * b);
            p += std::norm(m[2] * a + m[3] * b);
        }
        acc += p;
        if (r < acc) {
            pick = k;
            break;
        }
    }
    refApply1q(amps, kraus[pick], q);
    refNormalize(amps);
    return pick;
}

std::size_t
refSample(const std::vector<Complex> &amps, Rng &rng)
{
    const double r = rng.uniform() * refNorm(amps);
    double acc = 0.0;
    for (std::size_t i = 0; i < amps.size(); ++i) {
        acc += std::norm(amps[i]);
        if (r < acc)
            return i;
    }
    return amps.size() - 1;
}

/** A reproducible non-trivial entangled state on @p n qubits. */
sim::StateVector
randomState(int n, std::uint64_t seed)
{
    sim::StateVector sv(n);
    Rng rng(seed);
    for (int q = 0; q < n; ++q) {
        sv.applyGate(OpKind::Ry, {q}, {rng.uniform() * 3.0});
        sv.applyGate(OpKind::Rz, {q}, {rng.uniform() * 3.0});
    }
    for (int q = 0; q + 1 < n; ++q)
        sv.applyGate(OpKind::Cx, {q, q + 1}, {});
    for (int q = 0; q < n; ++q)
        sv.applyGate(OpKind::Rx, {q}, {rng.uniform() * 3.0});
    return sv;
}

void
expectAmpsEqual(const std::vector<Complex> &got,
                const std::vector<Complex> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        // EXPECT_EQ on doubles: exact equality, but +0 == -0 — the
        // only deviation the structured fast paths are allowed.
        EXPECT_EQ(got[i].real(), want[i].real()) << "basis " << i;
        EXPECT_EQ(got[i].imag(), want[i].imag()) << "basis " << i;
    }
}

// ---------------------------------------------------------------------
// Kernel equivalence: optimized vs reference on every structure class.
// ---------------------------------------------------------------------

TEST(KernelEquivalence, Apply1qAllStructureClasses)
{
    const int n = 5;
    const std::vector<std::array<Complex, 4>> matrices = {
        circuit::gateMatrix1q(OpKind::H, {}),        // general
        circuit::gateMatrix1q(OpKind::Rx, {0.83}),   // general, complex
        circuit::gateMatrix1q(OpKind::Rz, {0.37}),   // diagonal
        circuit::gateMatrix1q(OpKind::Z, {}),        // diagonal, real
        circuit::gateMatrix1q(OpKind::S, {}),        // diagonal, d0 = 1
        circuit::gateMatrix1q(OpKind::T, {}),        // diagonal, d0 = 1
        circuit::gateMatrix1q(OpKind::I, {}),        // identity
        circuit::gateMatrix1q(OpKind::X, {}),        // anti-diagonal
        circuit::gateMatrix1q(OpKind::Y, {}),        // anti-diagonal
        {Complex(1), 0, 0, Complex(0.94868329805051381)},  // Kraus-like
        {0, Complex(0.31622776601683794), 0, 0},     // damping jump
    };
    for (std::size_t mi = 0; mi < matrices.size(); ++mi) {
        for (int q = 0; q < n; ++q) {
            sim::StateVector sv =
                randomState(n, 1000 + mi * 10 + std::uint64_t(q));
            std::vector<Complex> ref = sv.amplitudes();
            sv.apply1q(matrices[mi], q);
            refApply1q(ref, matrices[mi], q);
            expectAmpsEqual(sv.amplitudes(), ref);
        }
    }
}

TEST(KernelEquivalence, Apply2qAllStructureClasses)
{
    const int n = 5;
    const Complex i01(0.0, 1.0);
    std::vector<std::array<Complex, 16>> matrices = {
        circuit::gateMatrix2q(OpKind::Cx),   // permutation
        circuit::gateMatrix2q(OpKind::Cz),   // diagonal (phase on |11>)
        circuit::gateMatrix2q(OpKind::Swap), // permutation
    };
    // Monomial but neither permutation nor plain diagonal: iSWAP.
    matrices.push_back({1, 0, 0, 0,  //
                        0, 0, i01, 0,  //
                        0, i01, 0, 0,  //
                        0, 0, 0, 1});
    // General diagonal with non-unit entries.
    matrices.push_back({Complex(0.8, 0.6), 0, 0, 0,  //
                        0, Complex(0.0, 1.0), 0, 0,  //
                        0, 0, Complex(-1.0), 0,      //
                        0, 0, 0, Complex(0.6, -0.8)});
    // Dense 4x4 (not unitary; the kernel must not care).
    std::array<Complex, 16> dense{};
    for (int k = 0; k < 16; ++k)
        dense[std::size_t(k)] =
            Complex(0.1 * (k + 1), 0.05 * (15 - k));
    matrices.push_back(dense);
    for (std::size_t mi = 0; mi < matrices.size(); ++mi) {
        for (int q0 = 0; q0 < n; ++q0) {
            for (int q1 = 0; q1 < n; ++q1) {
                if (q0 == q1)
                    continue;
                sim::StateVector sv = randomState(
                    n, 5000 + mi * 100 + std::uint64_t(q0 * n + q1));
                std::vector<Complex> ref = sv.amplitudes();
                sv.apply2q(matrices[mi], q0, q1);
                refApply2q(ref, matrices[mi], q0, q1);
                expectAmpsEqual(sv.amplitudes(), ref);
            }
        }
    }
}

TEST(KernelEquivalence, Kraus1qSamePicksAndAmplitudes)
{
    const int n = 4;
    const std::vector<sim::Kraus1q> channels = {
        sim::amplitudeDamping(0.3),
        sim::phaseDamping(0.25),
        sim::depolarizing1q(0.4),
        sim::bitFlip(0.5),
    };
    sim::StateVector sv = randomState(n, 42);
    std::vector<Complex> ref = sv.amplitudes();
    Rng rngNew(7);
    Rng rngRef(7);
    for (int round = 0; round < 8; ++round) {
        for (const auto &kraus : channels) {
            for (int q = 0; q < n; ++q) {
                const std::size_t pickNew =
                    sv.applyKraus1q(kraus, q, rngNew);
                const std::size_t pickRef =
                    refKraus1q(ref, kraus, q, rngRef);
                ASSERT_EQ(pickNew, pickRef);
                expectAmpsEqual(sv.amplitudes(), ref);
            }
        }
        // Interleave gates so the norm cache is repeatedly
        // invalidated and rebuilt mid-sequence.
        sv.applyGate(OpKind::H, {round % n}, {});
        refApply1q(ref, circuit::gateMatrix1q(OpKind::H, {}),
                   round % n);
    }
}

TEST(KernelEquivalence, CumulativeSamplingMatchesLinearScan)
{
    sim::StateVector sv = randomState(6, 2718);
    const std::vector<double> cum = sv.cumulativeProbabilities();
    ASSERT_EQ(cum.size(), sv.dim());
    EXPECT_EQ(cum.back(), sv.norm());
    const std::vector<Complex> ref = sv.amplitudes();
    Rng rngNew(31);
    Rng rngRef(31);
    for (int draw = 0; draw < 4096; ++draw) {
        EXPECT_EQ(sim::sampleFromCumulative(cum, rngNew),
                  refSample(ref, rngRef));
    }
}

// ---------------------------------------------------------------------
// Golden fixed-seed outputs captured from the pre-rewrite engine.
// ---------------------------------------------------------------------

void
expectCounts(const stats::Counts &counts,
             const std::vector<std::pair<Outcome, std::uint64_t>> &want,
             std::uint64_t total)
{
    EXPECT_EQ(counts.total(), total);
    std::map<Outcome, std::uint64_t> golden(want.begin(), want.end());
    for (Outcome o = 0; o < (Outcome(1) << counts.width()); ++o) {
        const auto it = golden.find(o);
        EXPECT_EQ(counts.count(o), it == golden.end() ? 0 : it->second)
            << "outcome 0x" << std::hex << o;
    }
}

TEST(GoldenCounts, StochasticBv6FixedSeed)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto program = compiler.compile(benchmarks::bv6().circuit);
    const sim::Executor exec(device);
    Rng rng(12345);
    const stats::Counts counts = exec.run(program.physical, 512, rng);
    expectCounts(
        counts,
        {{0x0, 24},  {0x1, 28},  {0x2, 5},   {0x3, 8},   {0x5, 1},
         {0x9, 3},   {0x10, 30}, {0x11, 67}, {0x12, 8},  {0x13, 9},
         {0x14, 1},  {0x16, 2},  {0x17, 1},  {0x18, 1},  {0x19, 1},
         {0x1b, 1},  {0x20, 34}, {0x21, 35}, {0x22, 14}, {0x23, 8},
         {0x25, 1},  {0x28, 1},  {0x29, 2},  {0x30, 75}, {0x31, 108},
         {0x32, 11}, {0x33, 25}, {0x34, 1},  {0x35, 3},  {0x39, 1},
         {0x3a, 1},  {0x3b, 1},  {0x3d, 1}},
        512);
}

/** The coherent-only device of the deterministic-tape goldens. */
hw::Device
coherentOnlyDevice()
{
    hw::NoiseSpec spec;
    spec.coherentScale = 1.5;
    spec.stochasticScale = 0.0;
    spec.enableDecoherence = false;
    spec.correlatedReadoutScale = 0.0;
    return hw::Device::melbourne(41, spec);
}

TEST(GoldenCounts, DeterministicBv6FixedSeed)
{
    const hw::Device device = coherentOnlyDevice();
    const transpile::Transpiler compiler(device);
    const auto program = compiler.compile(benchmarks::bv6().circuit);
    const sim::Executor exec(device);
    Rng rng(777);
    const stats::Counts counts = exec.run(program.physical, 512, rng);
    expectCounts(
        counts,
        {{0x0, 5},   {0x1, 2},   {0x2, 12},  {0x3, 7},   {0x9, 1},
         {0x10, 19}, {0x11, 11}, {0x12, 41}, {0x13, 34}, {0x14, 1},
         {0x16, 1},  {0x20, 6},  {0x21, 33}, {0x22, 10}, {0x23, 57},
         {0x27, 1},  {0x29, 1},  {0x2b, 1},  {0x30, 13}, {0x31, 80},
         {0x32, 24}, {0x33, 143}, {0x35, 1}, {0x37, 2},  {0x39, 2},
         {0x3a, 1},  {0x3b, 3}},
        512);
}

// Full EDM/WEDM merge probabilities for bv-6 on melbourne(2), 4096
// total shots, pipeline seed 2026 — captured at %.17g under the
// canonical tie-break (equal-ESP candidates order lexicographically on
// the mapping vector), so EXPECT_EQ is a bit-identity check. The
// runtime layer guarantees the same result at every jobs value.
const std::array<double, 64> kGoldenEdmBv6 = {
    0.019775390625, 0.041015625, 0.039794921875, 0.084716796875,
    0.00048828125, 0.000732421875, 0.00048828125, 0.00244140625,
    0.0009765625, 0.0009765625, 0.001220703125, 0.001708984375, 0,
    0.000244140625, 0.000244140625, 0.000244140625, 0.029052734375,
    0.0478515625, 0.083740234375, 0.1025390625, 0, 0.001708984375,
    0.001953125, 0.00390625, 0.00048828125, 0.001220703125,
    0.0009765625, 0.002197265625, 0, 0, 0.000244140625, 0,
    0.021240234375, 0.041748046875, 0.044189453125, 0.08544921875,
    0.000732421875, 0.001953125, 0.00146484375, 0.003662109375,
    0.000732421875, 0.001220703125, 0.0009765625, 0.002197265625, 0, 0,
    0.000244140625, 0, 0.033203125, 0.071044921875, 0.06884765625,
    0.131103515625, 0.002197265625, 0.002685546875, 0.00146484375,
    0.00537109375, 0.000732421875, 0.00341796875, 0.0009765625,
    0.001708984375, 0, 0.00048828125, 0, 0,
};

const std::array<double, 64> kGoldenWedmBv6 = {
    0.021325168527653947, 0.045262025368177902, 0.042546880662905545,
    0.090694517108582284, 0.00054771737238873473,
    0.00084847856597559154, 0.00048147874403692758,
    0.0023671937173258039, 0.0010954347447774695, 0.0010830011312106412,
    0.0012909287055130015, 0.0018652410688344255, 0,
    0.00030076119358685681, 0.00024812757716119438,
    0.00024812757716119438, 0.029040664969283352, 0.047442906539897828,
    0.083282563432671194, 0.095160599628484013, 0,
    0.0013975001098541096, 0.0017680141268707232, 0.0035573812857971534,
    0.00049391235760375585, 0.0013423909235793473,
    0.00092392888357433747, 0.0021610525743023601, 0, 0,
    0.00024812757716119438, 0, 0.022196596567933092,
    0.045045607186181544, 0.046915703768659459, 0.089278218860657788,
    0.00067580130641314308, 0.0017532377165852618,
    0.0015118462588219065, 0.0035256451661351911,
    0.00084847856597559154, 0.0012235186788018778,
    0.0011504111579217647, 0.0025992407127117534, 0, 0,
    0.00024812757716119438, 0, 0.03325552878005384, 0.06798823574477135,
    0.066705805739811261, 0.1197088662996315, 0.0021451047656575821,
    0.0024929348546315795, 0.0014054076276112651, 0.004884116671489783,
    0.00074086853640563377, 0.0033674520461001436,
    0.00099133891028546119, 0.0017162596380463171, 0,
    0.00060152238717371361, 0, 0,
};

class GoldenPipeline : public ::testing::TestWithParam<int>
{
};

TEST_P(GoldenPipeline, EdmWedmBv6FixedSeedBitIdentical)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EdmConfig config;
    config.totalShots = 4096;
    config.jobs = GetParam();
    core::EdmPipeline pipeline(device, config);
    Rng rng(2026);
    const auto result = pipeline.run(benchmarks::bv6().circuit, rng);
    ASSERT_EQ(result.edm.size(), kGoldenEdmBv6.size());
    ASSERT_EQ(result.wedm.size(), kGoldenWedmBv6.size());
    for (std::size_t i = 0; i < kGoldenEdmBv6.size(); ++i) {
        EXPECT_EQ(result.edm.probabilities()[i], kGoldenEdmBv6[i])
            << "edm outcome " << i;
        EXPECT_EQ(result.wedm.probabilities()[i], kGoldenWedmBv6[i])
            << "wedm outcome " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Jobs, GoldenPipeline, ::testing::Values(1, 4));

// ---------------------------------------------------------------------
// Trajectory vs exact density matrix on deterministic tapes.
// ---------------------------------------------------------------------

/** Zero every readout error so sampling noise is the only channel. */
hw::Device
withoutReadout(const hw::Device &device)
{
    hw::Calibration cal = device.calibration();
    for (int q = 0; q < int(cal.numQubits()); ++q) {
        cal.qubit(q).readoutP01 = 0.0;
        cal.qubit(q).readoutP10 = 0.0;
    }
    return device.withCalibration(cal);
}

void
expectTrajectoryMatchesExact(const benchmarks::Benchmark &bench)
{
    const hw::Device device = withoutReadout(coherentOnlyDevice());
    const transpile::Transpiler compiler(device);
    const auto program = compiler.compile(bench.circuit);
    const auto tape =
        sim::ExecutionTape::build(device, program.physical);
    ASSERT_FALSE(tape.stochastic);
    ASSERT_LE(tape.numLocal, 10);

    // Replay the pre-materialized tape matrices on a pure state —
    // exactly what the executor's deterministic path evolves once.
    sim::StateVector sv(tape.numLocal);
    for (const sim::TapeOp &op : tape.ops) {
        if (op.l1 < 0) {
            sv.apply1q(op.gate1q, op.l0);
            if (op.overRotation != 0.0)
                sv.apply1q(op.overRotationMat, op.l0);
        } else {
            sv.apply2q(op.gate2q, op.l0, op.l1);
            if (op.overRotation != 0.0)
                sv.apply1q(op.overRotationMat, op.l1);
            if (op.controlPhase != 0.0)
                sv.apply1q(op.controlPhaseMat, op.l0);
            for (const auto &[spectator, kick] : op.crosstalk)
                sv.apply1q(kick, spectator);
        }
    }
    stats::Distribution traj(tape.numClbits);
    const std::vector<double> probs = sv.probabilities();
    for (std::size_t basis = 0; basis < probs.size(); ++basis) {
        if (probs[basis] <= 0.0)
            continue;
        Outcome outcome = 0;
        for (const auto &m : tape.measures)
            outcome =
                setBit(outcome, m.clbit, getBit(basis, m.local));
        traj.addProb(outcome, probs[basis]);
    }
    traj.normalize();

    const sim::Executor exec(device);
    const stats::Distribution exact = exec.exactDistribution(tape);
    ASSERT_EQ(exact.size(), traj.size());
    for (std::size_t o = 0; o < exact.size(); ++o) {
        EXPECT_NEAR(traj.probabilities()[o], exact.probabilities()[o],
                    1e-12)
            << "outcome " << o;
    }
}

TEST(TrajectoryVsExact, DeterministicBv6Within1e12)
{
    expectTrajectoryMatchesExact(benchmarks::bv6());
}

TEST(TrajectoryVsExact, DeterministicFredkinWithin1e12)
{
    expectTrajectoryMatchesExact(benchmarks::fredkin());
}

} // namespace
} // namespace qedm
