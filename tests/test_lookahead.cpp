/**
 * @file
 * Unit tests for the SABRE-style lookahead router: coupling validity,
 * semantic preservation, and comparison against the path router.
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "benchmarks/extra.hpp"
#include "common/error.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "transpile/esp.hpp"
#include "transpile/lookahead_router.hpp"
#include "transpile/placer.hpp"
#include "transpile/router.hpp"

namespace qedm::transpile {
namespace {

using circuit::Circuit;

TEST(LookaheadRouter, AdjacentGatesNeedNoSwaps)
{
    const hw::Device device = hw::Device::melbourne(7);
    const LookaheadRouter router(device);
    Circuit c(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();
    const auto result = router.route(c, {0, 1, 2});
    EXPECT_EQ(result.swapCount, 0);
}

TEST(LookaheadRouter, RespectsCoupling)
{
    const hw::Device device = hw::Device::melbourne(7);
    const LookaheadRouter router(device);
    const auto bench = benchmarks::decoder24();
    const Placer placer(device);
    const auto result =
        router.route(bench.circuit, placer.place(bench.circuit));
    EXPECT_TRUE(result.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
}

TEST(LookaheadRouter, ValidatesInitialMap)
{
    const hw::Device device = hw::Device::melbourne(7);
    const LookaheadRouter router(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    EXPECT_THROW(router.route(c, {0}), UserError);
    EXPECT_THROW(router.route(c, {1, 1}), UserError);
    EXPECT_THROW(router.route(c, {0, 20}), UserError);
}

TEST(LookaheadRouter, ConfigValidation)
{
    const hw::Device device = hw::Device::melbourne(7);
    LookaheadConfig config;
    config.window = 0;
    EXPECT_THROW(LookaheadRouter(device, config), UserError);
    config.window = 5;
    config.windowWeight = -1.0;
    EXPECT_THROW(LookaheadRouter(device, config), UserError);
}

// Semantic preservation across benchmarks and both routers.
class RouterEquivalenceTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RouterEquivalenceTest, RoutedSemanticsMatchLogical)
{
    const auto bench = benchmarks::byName(GetParam());
    const hw::Device device = hw::Device::idealMelbourne();
    const Placer placer(device);
    const auto initial = placer.place(bench.circuit);

    const auto logical_dist = sim::idealDistribution(bench.circuit);

    const LookaheadRouter lookahead(device);
    const auto routed = lookahead.route(bench.circuit, initial);
    const auto routed_dist = sim::idealDistribution(routed.physical);
    for (std::size_t o = 0; o < logical_dist.size(); ++o) {
        EXPECT_NEAR(routed_dist.prob(o), logical_dist.prob(o), 1e-9)
            << "outcome " << o;
    }
}

INSTANTIATE_TEST_SUITE_P(Paper, RouterEquivalenceTest,
                         ::testing::Values("bv-6", "bv-7", "fredkin",
                                           "adder", "decode-24",
                                           "greycode"));

TEST(LookaheadRouter, CompetitiveWithPathRouterOnDeepCircuit)
{
    // On the deep decoder circuit with a deliberately scattered
    // placement, the lookahead router should not need dramatically
    // more SWAPs than the greedy path router (and often needs fewer).
    const hw::Device device = hw::Device::melbourne(7);
    const auto bench = benchmarks::decoder24();
    const std::vector<int> scattered{0, 7, 3, 10, 5, 12};

    const Router path(device, RouteCost::HopCount);
    LookaheadConfig config;
    config.cost = RouteCost::HopCount;
    const LookaheadRouter lookahead(device, config);

    const auto path_result = path.route(bench.circuit, scattered);
    const auto la_result = lookahead.route(bench.circuit, scattered);
    EXPECT_LE(la_result.swapCount, path_result.swapCount * 2);
    EXPECT_GT(la_result.swapCount, 0);
}

TEST(LookaheadRouter, HandlesInterleavedDependencies)
{
    // Two interleaved CX chains between distant pairs: lookahead must
    // terminate and produce a valid circuit.
    const hw::Device device = hw::Device::melbourne(7);
    Circuit c(4, 4);
    for (int rep = 0; rep < 3; ++rep) {
        c.cx(0, 1);
        c.cx(2, 3);
        c.cx(1, 2);
        c.cx(3, 0);
    }
    c.measureAll();
    const LookaheadRouter router(device);
    const auto result = router.route(c, {0, 6, 13, 8});
    EXPECT_TRUE(result.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
    // Ideal-device semantics preserved.
    const auto expect = sim::idealDistribution(c);
    const auto got = sim::idealDistribution(result.physical);
    for (std::size_t o = 0; o < expect.size(); ++o)
        EXPECT_NEAR(got.prob(o), expect.prob(o), 1e-9);
}

TEST(LookaheadRouter, FinalMapConsistent)
{
    const hw::Device device = hw::Device::melbourne(7);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const LookaheadRouter router(device);
    const auto result = router.route(c, {0, 4});
    // Final positions must be distinct, valid and adjacent for the
    // final CX to have been emitted.
    EXPECT_NE(result.finalMap[0], result.finalMap[1]);
    EXPECT_GT(result.swapCount, 0);
}

} // namespace
} // namespace qedm::transpile
