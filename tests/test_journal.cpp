/**
 * @file
 * Tests for the crash-safe experiment journal (resilience/journal.hpp)
 * and its integration with the EDM pipeline and experiment driver.
 * The load-bearing properties:
 *
 *  - the record stream round-trips bit-exactly (counts, policy
 *    doubles, degradation reports) and replay indexes by key with
 *    last-write-wins, so resume is independent of --jobs;
 *  - a torn or checksum-bad *final* record is the expected crash
 *    artifact: tolerated, truncated away, and its batch redone;
 *  - mid-stream corruption, a bad header, and a foreign fingerprint
 *    are structured refusals (CheckError, pass "journal");
 *  - resuming a truncated journal at any byte offset and any jobs
 *    value reproduces the uninterrupted summary bit-identically, with
 *    the trial budget conserved under injected faults;
 *  - a recorded wall-clock watchdog fire replays as a forced fault,
 *    making the inherently nondeterministic live run reproducible.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "check/check.hpp"
#include "core/edm.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "resilience/journal.hpp"
#include "runtime/clock.hpp"

namespace qedm {
namespace {

using core::EdmConfig;
using core::EdmPipeline;
using core::EdmResult;
using core::ExperimentConfig;
using core::ExperimentSummary;
using resilience::BatchKey;
using resilience::BatchRecord;
using resilience::Journal;
using resilience::JournalFingerprint;
using resilience::JournalReplay;
using resilience::JournalStage;
using resilience::RoundRecord;
using resilience::WallAbandon;

constexpr std::uint64_t kSeed = 7;
constexpr std::uint64_t kHeaderBytes = 8 + 4 + 8 + 8 + 8;

/** Unique scratch path under gtest's temp dir. */
std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "qedm_journal_" + name;
}

JournalFingerprint
someFingerprint()
{
    JournalFingerprint fp;
    fp.config = 0x1111;
    fp.device = 0x2222;
    fp.seedRoot = 0x3333;
    return fp;
}

std::vector<char>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

stats::Counts
someCounts()
{
    stats::Counts c(3);
    c.add(0b101, 40);
    c.add(0b010, 24);
    return c;
}

void
expectSameEvent(const resilience::FaultEvent &a,
                const resilience::FaultEvent &b)
{
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.member, b.member);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.attempt, b.attempt);
}

void
expectSameReport(const resilience::DegradationReport &a,
                 const resilience::DegradationReport &b)
{
    EXPECT_EQ(a.trialsLost, b.trialsLost);
    EXPECT_EQ(a.trialsReassigned, b.trialsReassigned);
    EXPECT_EQ(a.retriesTotal, b.retriesTotal);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (std::size_t i = 0; i < a.faults.size(); ++i)
        expectSameEvent(a.faults[i], b.faults[i]);
    ASSERT_EQ(a.members.size(), b.members.size());
    for (std::size_t i = 0; i < a.members.size(); ++i) {
        EXPECT_EQ(a.members[i].member, b.members[i].member);
        EXPECT_EQ(a.members[i].cause, b.members[i].cause);
        EXPECT_EQ(a.members[i].plannedShots, b.members[i].plannedShots);
        EXPECT_EQ(a.members[i].completedShots,
                  b.members[i].completedShots);
        EXPECT_EQ(a.members[i].kept, b.members[i].kept);
        EXPECT_EQ(a.members[i].retries, b.members[i].retries);
    }
    EXPECT_EQ(a.toString(), b.toString());
}

void
expectSameOutcome(const core::PolicyOutcome &a,
                  const core::PolicyOutcome &b)
{
    // Bit-exact, not approximate: crash resume must not perturb the
    // answer at all.
    EXPECT_EQ(a.ist, b.ist);
    EXPECT_EQ(a.pst, b.pst);
}

void
expectSameSummary(const ExperimentSummary &a,
                  const ExperimentSummary &b)
{
    EXPECT_EQ(a.benchmark, b.benchmark);
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        expectSameOutcome(a.rounds[r].baselineEst,
                          b.rounds[r].baselineEst);
        expectSameOutcome(a.rounds[r].baselinePost,
                          b.rounds[r].baselinePost);
        expectSameOutcome(a.rounds[r].edm, b.rounds[r].edm);
        expectSameOutcome(a.rounds[r].wedm, b.rounds[r].wedm);
        expectSameReport(a.rounds[r].degradation,
                         b.rounds[r].degradation);
    }
    expectSameOutcome(a.median.edm, b.median.edm);
    expectSameOutcome(a.median.wedm, b.median.wedm);
    EXPECT_EQ(a.degradedRounds, b.degradedRounds);
    EXPECT_EQ(a.trialsLost, b.trialsLost);
    EXPECT_EQ(a.trialsReassigned, b.trialsReassigned);
    EXPECT_EQ(a.retriesTotal, b.retriesTotal);
}

// ---------------------------------------------------------------------
// Record stream round-trip.

TEST(JournalTest, RoundTripPreservesRecords)
{
    const std::string path = tmpPath("roundtrip.bin");
    const JournalFingerprint fp = someFingerprint();
    {
        Journal journal = Journal::create(path, fp);

        BatchRecord ok;
        ok.attempts = 2;
        ok.counts = someCounts();
        journal.recordBatch(BatchKey{1, JournalStage::Members, 3, 5},
                            ok);

        BatchRecord lost;
        lost.attempts = 3;
        lost.exhausted = true;
        journal.recordBatch(
            BatchKey{1, JournalStage::BaselineEst, 0, 7}, lost);

        journal.recordWallAbandon(1, WallAbandon{2, 9});

        RoundRecord round;
        round.policy = {0.5, 0.25, 0.125, 0.0625,
                        1.5, 2.5,  3.5,   4.5};
        resilience::MemberDegradation deg;
        deg.member = 2;
        deg.cause = resilience::FaultKind::WallClockAbandoned;
        deg.plannedShots = 4096;
        deg.completedShots = 2048;
        deg.kept = true;
        round.degradation.members.push_back(deg);
        round.degradation.faults.push_back(
            {resilience::FaultKind::WallClockAbandoned, 2, 9, -1});
        round.degradation.trialsLost = 2048;
        journal.recordRound(1, round);
    }

    const JournalReplay replay = JournalReplay::load(path);
    EXPECT_TRUE(replay.fingerprint() == fp);
    EXPECT_FALSE(replay.truncatedTail());
    EXPECT_EQ(replay.batchCount(), 2u);
    EXPECT_EQ(replay.roundCount(), 1u);

    const BatchRecord *ok =
        replay.findBatch(BatchKey{1, JournalStage::Members, 3, 5});
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->attempts, 2);
    EXPECT_FALSE(ok->exhausted);
    ASSERT_TRUE(ok->counts.has_value());
    EXPECT_EQ(ok->counts->width(), 3);
    EXPECT_EQ(ok->counts->entries(), someCounts().entries());

    const BatchRecord *lost =
        replay.findBatch(BatchKey{1, JournalStage::BaselineEst, 0, 7});
    ASSERT_NE(lost, nullptr);
    EXPECT_EQ(lost->attempts, 3);
    EXPECT_TRUE(lost->exhausted);
    EXPECT_FALSE(lost->counts.has_value());

    // Keys that were never written stay absent.
    EXPECT_EQ(
        replay.findBatch(BatchKey{1, JournalStage::Members, 3, 6}),
        nullptr);
    EXPECT_EQ(replay.findRound(0), nullptr);

    const RoundRecord *round = replay.findRound(1);
    ASSERT_NE(round, nullptr);
    EXPECT_EQ(round->policy[0], 0.5);
    EXPECT_EQ(round->policy[7], 4.5);
    ASSERT_EQ(round->degradation.members.size(), 1u);
    EXPECT_EQ(round->degradation.members[0].completedShots, 2048u);
    EXPECT_EQ(round->degradation.trialsLost, 2048u);

    const auto abandons = replay.wallAbandons(1);
    ASSERT_EQ(abandons.size(), 1u);
    EXPECT_EQ(abandons[0].member, 2u);
    EXPECT_EQ(abandons[0].batch, 9u);
    EXPECT_TRUE(replay.wallAbandons(0).empty());
    std::remove(path.c_str());
}

TEST(JournalTest, LastWriteWinsOnDuplicateKeys)
{
    const std::string path = tmpPath("lastwins.bin");
    const BatchKey key{0, JournalStage::Members, 1, 2};
    {
        Journal journal = Journal::create(path, someFingerprint());
        BatchRecord first;
        first.attempts = 1;
        journal.recordBatch(key, first);
        BatchRecord second;
        second.attempts = 4;
        second.counts = someCounts();
        journal.recordBatch(key, second);
    }
    const JournalReplay replay = JournalReplay::load(path);
    EXPECT_EQ(replay.batchCount(), 1u);
    const BatchRecord *rec = replay.findBatch(key);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->attempts, 4);
    EXPECT_TRUE(rec->counts.has_value());
    std::remove(path.c_str());
}

TEST(JournalTest, WallAbandonsCanonicalizeToMinBatchPerMember)
{
    const std::string path = tmpPath("wallmin.bin");
    {
        Journal journal = Journal::create(path, someFingerprint());
        // Out-of-order concurrent fires: the canonical cut point is
        // the minimum batch per member, sorted by member.
        journal.recordWallAbandon(0, WallAbandon{3, 7});
        journal.recordWallAbandon(0, WallAbandon{3, 4});
        journal.recordWallAbandon(0, WallAbandon{3, 6});
        journal.recordWallAbandon(0, WallAbandon{1, 2});
    }
    const JournalReplay replay = JournalReplay::load(path);
    const auto abandons = replay.wallAbandons(0);
    ASSERT_EQ(abandons.size(), 2u);
    EXPECT_EQ(abandons[0].member, 1u);
    EXPECT_EQ(abandons[0].batch, 2u);
    EXPECT_EQ(abandons[1].member, 3u);
    EXPECT_EQ(abandons[1].batch, 4u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Failure taxonomy: torn tails tolerated, everything else structured.

TEST(JournalTest, TornFinalRecordIsDiscarded)
{
    const std::string path = tmpPath("torn.bin");
    {
        Journal journal = Journal::create(path, someFingerprint());
        BatchRecord rec;
        rec.attempts = 1;
        rec.counts = someCounts();
        journal.recordBatch(BatchKey{0, JournalStage::Members, 0, 0},
                            rec);
        journal.recordBatch(BatchKey{0, JournalStage::Members, 0, 1},
                            rec);
    }
    auto bytes = readFile(path);
    const std::uint64_t intact = bytes.size();

    // Crash artifact: the final record only half-landed on disk.
    bytes.resize(bytes.size() - 9);
    writeFile(path, bytes);
    const JournalReplay replay = JournalReplay::load(path);
    EXPECT_TRUE(replay.truncatedTail());
    EXPECT_EQ(replay.batchCount(), 1u);
    EXPECT_LT(replay.validBytes(), intact);
    EXPECT_NE(
        replay.findBatch(BatchKey{0, JournalStage::Members, 0, 0}),
        nullptr);
    EXPECT_EQ(
        replay.findBatch(BatchKey{0, JournalStage::Members, 0, 1}),
        nullptr);
    std::remove(path.c_str());
}

TEST(JournalTest, ChecksumBadFinalRecordIsDiscarded)
{
    const std::string path = tmpPath("badtail.bin");
    {
        Journal journal = Journal::create(path, someFingerprint());
        BatchRecord rec;
        rec.attempts = 1;
        rec.counts = someCounts();
        journal.recordBatch(BatchKey{0, JournalStage::Members, 0, 0},
                            rec);
        journal.recordBatch(BatchKey{0, JournalStage::Members, 0, 1},
                            rec);
    }
    auto bytes = readFile(path);
    bytes.back() = static_cast<char>(bytes.back() ^ 0x5A);
    writeFile(path, bytes);
    const JournalReplay replay = JournalReplay::load(path);
    EXPECT_TRUE(replay.truncatedTail());
    EXPECT_EQ(replay.batchCount(), 1u);
    std::remove(path.c_str());
}

TEST(JournalTest, MidStreamCorruptionIsRejected)
{
    const std::string path = tmpPath("corrupt.bin");
    {
        Journal journal = Journal::create(path, someFingerprint());
        BatchRecord rec;
        rec.attempts = 1;
        rec.counts = someCounts();
        journal.recordBatch(BatchKey{0, JournalStage::Members, 0, 0},
                            rec);
        journal.recordBatch(BatchKey{0, JournalStage::Members, 0, 1},
                            rec);
    }
    auto bytes = readFile(path);
    // Flip a payload byte of the *first* record: a record with valid
    // bytes after it cannot be a crash artifact.
    bytes[kHeaderBytes + 8] =
        static_cast<char>(bytes[kHeaderBytes + 8] ^ 0xFF);
    writeFile(path, bytes);
    try {
        JournalReplay::load(path);
        FAIL() << "corrupt journal accepted";
    } catch (const check::CheckError &e) {
        EXPECT_EQ(e.kind(), check::CheckErrorKind::JournalCorruptRecord);
        EXPECT_EQ(e.pass(), "journal");
    }
    std::remove(path.c_str());
}

TEST(JournalTest, BadHeaderIsRejected)
{
    const std::string garbage = tmpPath("garbage.bin");
    writeFile(garbage, {'n', 'o', 't', ' ', 'a', ' ', 'j', 'o', 'u',
                        'r', 'n', 'a', 'l', ' ', 'a', 't', ' ', 'a',
                        'l', 'l', ' ', 'h', 'e', 'r', 'e', ' ', 'n',
                        'o', 'p', 'e', ' ', 'n', 'o', 'p', 'e', '!'});
    const std::string stub = tmpPath("stub.bin");
    writeFile(stub, {'Q', 'E', 'D', 'M'});
    for (const std::string &path : {garbage, stub}) {
        try {
            JournalReplay::load(path);
            FAIL() << "bad header accepted: " << path;
        } catch (const check::CheckError &e) {
            EXPECT_EQ(e.kind(),
                      check::CheckErrorKind::JournalHeaderInvalid);
            EXPECT_EQ(e.pass(), "journal");
        }
        std::remove(path.c_str());
    }
}

TEST(JournalTest, FingerprintMismatchIsRejected)
{
    const std::string path = tmpPath("foreign.bin");
    { Journal::create(path, someFingerprint()); }
    const JournalReplay replay = JournalReplay::load(path);
    JournalFingerprint other = someFingerprint();
    other.seedRoot ^= 1;
    try {
        replay.requireMatches(other);
        FAIL() << "foreign fingerprint accepted";
    } catch (const check::CheckError &e) {
        EXPECT_EQ(e.kind(),
                  check::CheckErrorKind::JournalFingerprintMismatch);
    }
    EXPECT_NO_THROW(replay.requireMatches(someFingerprint()));
    std::remove(path.c_str());
}

TEST(JournalTest, ResumeTruncatesTornTailAndAppends)
{
    const std::string path = tmpPath("resume.bin");
    const BatchKey done{0, JournalStage::Members, 0, 0};
    const BatchKey redone{0, JournalStage::Members, 0, 1};
    {
        Journal journal = Journal::create(path, someFingerprint());
        BatchRecord rec;
        rec.attempts = 1;
        rec.counts = someCounts();
        journal.recordBatch(done, rec);
    }
    auto bytes = readFile(path);
    bytes.push_back('\x07'); // torn tail: a lone length byte
    writeFile(path, bytes);

    const JournalReplay before = JournalReplay::load(path);
    EXPECT_TRUE(before.truncatedTail());
    {
        Journal journal =
            Journal::resume(path, before.validBytes());
        BatchRecord rec;
        rec.attempts = 2;
        rec.counts = someCounts();
        journal.recordBatch(redone, rec);
    }
    const JournalReplay after = JournalReplay::load(path);
    EXPECT_FALSE(after.truncatedTail());
    EXPECT_EQ(after.batchCount(), 2u);
    ASSERT_NE(after.findBatch(done), nullptr);
    ASSERT_NE(after.findBatch(redone), nullptr);
    EXPECT_EQ(after.findBatch(redone)->attempts, 2);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Experiment integration: crash resume is bit-identical at any jobs.

ExperimentConfig
smallExperiment(int jobs)
{
    ExperimentConfig config;
    config.rounds = 3;
    config.totalShots = 4096;
    config.ensembleSize = 4;
    config.jobs = jobs;
    return config;
}

ExperimentSummary
runBv6(const ExperimentConfig &config)
{
    const hw::Device device = hw::Device::melbourne(kSeed);
    return core::runExperiment(device, benchmarks::bv6(), config,
                               kSeed);
}

TEST(JournalExperimentTest, JournalingDoesNotPerturbTheSummary)
{
    const std::string path = tmpPath("exp_record.bin");
    const ExperimentSummary golden = runBv6(smallExperiment(2));

    ExperimentConfig config = smallExperiment(2);
    const hw::Device device = hw::Device::melbourne(kSeed);
    Journal journal = Journal::create(
        path, core::experimentFingerprint(device, benchmarks::bv6(),
                                          config, kSeed));
    config.journal = &journal;
    expectSameSummary(runBv6(config), golden);

    const JournalReplay replay = JournalReplay::load(path);
    EXPECT_EQ(replay.roundCount(), 3u);
    EXPECT_FALSE(replay.truncatedTail());
    std::remove(path.c_str());
}

TEST(JournalExperimentTest, ResumeFromAnyTruncationIsBitIdentical)
{
    const std::string full = tmpPath("exp_full.bin");
    const ExperimentSummary golden = runBv6(smallExperiment(1));

    // Record a complete journal at jobs=4 (completion order in the
    // file is scheduling-dependent; resume must not care).
    {
        ExperimentConfig config = smallExperiment(4);
        const hw::Device device = hw::Device::melbourne(kSeed);
        Journal journal = Journal::create(
            full, core::experimentFingerprint(
                      device, benchmarks::bv6(), config, kSeed));
        config.journal = &journal;
        runBv6(config);
    }
    const auto bytes = readFile(full);

    // Simulate crashes at several points: header-only (nothing done),
    // mid-run, and near-complete. Torn cuts land mid-record; the
    // replay discards the tail and the resumed run redoes that unit.
    const std::uint64_t cuts[] = {kHeaderBytes, bytes.size() / 3,
                                  2 * bytes.size() / 3,
                                  bytes.size() - 5};
    for (const std::uint64_t cut : cuts) {
        for (const int jobs : {1, 4}) {
            const std::string path = tmpPath("exp_cut.bin");
            writeFile(path,
                      std::vector<char>(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<long>(cut)));
            ExperimentConfig config = smallExperiment(jobs);
            const JournalReplay replay = JournalReplay::load(path);
            Journal journal =
                Journal::resume(path, replay.validBytes());
            config.replay = &replay;
            config.journal = &journal;
            const ExperimentSummary resumed = runBv6(config);
            expectSameSummary(resumed, golden);
            std::remove(path.c_str());
        }
    }
    std::remove(full.c_str());
}

TEST(JournalExperimentTest, FaultedResumeConservesTheTrialBudget)
{
    ExperimentConfig faulted = smallExperiment(2);
    faulted.resilience.faults.transientProb = 0.35;
    faulted.resilience.faults.dropoutProb = 0.4;
    faulted.resilience.retryMax = 1;
    faulted.resilience.minTrialsPerMember = 1;

    const ExperimentSummary golden = runBv6(faulted);
    EXPECT_GT(golden.degradedRounds, 0u)
        << "fault config too mild to exercise degradation";

    const std::string full = tmpPath("exp_faulted.bin");
    {
        ExperimentConfig config = faulted;
        const hw::Device device = hw::Device::melbourne(kSeed);
        Journal journal = Journal::create(
            full, core::experimentFingerprint(
                      device, benchmarks::bv6(), config, kSeed));
        config.journal = &journal;
        expectSameSummary(runBv6(config), golden);
    }
    const auto bytes = readFile(full);
    const std::string path = tmpPath("exp_faulted_cut.bin");
    writeFile(path, std::vector<char>(
                        bytes.begin(),
                        bytes.begin() +
                            static_cast<long>(bytes.size() / 2)));

    ExperimentConfig config = faulted;
    config.jobs = 4;
    const JournalReplay replay = JournalReplay::load(path);
    Journal journal = Journal::resume(path, replay.validBytes());
    config.replay = &replay;
    config.journal = &journal;
    const ExperimentSummary resumed = runBv6(config);
    expectSameSummary(resumed, golden);

    // Budget conservation across the crash boundary: every round
    // accounts for exactly totalShots trials, used plus lost.
    for (const auto &round : resumed.rounds) {
        std::uint64_t used = faulted.totalShots;
        for (const auto &m : round.degradation.members) {
            used -= m.plannedShots;
            if (m.kept)
                used += m.completedShots;
        }
        used += round.degradation.trialsReassigned;
        EXPECT_EQ(used + round.degradation.trialsLost,
                  faulted.totalShots);
    }
    std::remove(path.c_str());
    std::remove(full.c_str());
}

TEST(JournalExperimentTest, ForeignJournalRefusesToResume)
{
    const std::string path = tmpPath("exp_foreign.bin");
    {
        ExperimentConfig config = smallExperiment(1);
        const hw::Device device = hw::Device::melbourne(kSeed);
        Journal journal = Journal::create(
            path, core::experimentFingerprint(
                      device, benchmarks::bv6(), config, kSeed));
        config.journal = &journal;
        runBv6(config);
    }
    const JournalReplay replay = JournalReplay::load(path);
    ExperimentConfig config = smallExperiment(1);
    config.replay = &replay;
    const hw::Device device = hw::Device::melbourne(kSeed);
    try {
        // Same journal, different seed: a different run's answer.
        core::runExperiment(device, benchmarks::bv6(), config,
                            kSeed + 1);
        FAIL() << "foreign journal accepted";
    } catch (const check::CheckError &e) {
        EXPECT_EQ(e.kind(),
                  check::CheckErrorKind::JournalFingerprintMismatch);
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Watchdog record/replay: the wall-clock fire becomes a durable fact.

TEST(JournalWatchdogTest, RecordedWallFiresReplayBitIdentically)
{
    // Live run on a fake clock that burns 40ms per read: every member
    // blows the 25ms budget after its first batch, so the watchdog
    // fires at batch 1 for all members.
    const runtime::ManualClock clock(0.0, 40.0);
    const hw::Device device = hw::Device::melbourne(2);

    EdmConfig live;
    live.totalShots = 4096;
    live.shotBatch = 512;
    live.jobs = 1;
    live.resilience.wallDeadlineMs = 25.0;
    live.resilience.clock = &clock;
    live.resilience.minTrialsPerMember = 1;

    const std::string path = tmpPath("watchdog.bin");
    Journal journal = Journal::create(path, someFingerprint());
    live.journal = &journal;

    const EdmPipeline live_pipeline(device, live);
    const EdmResult live_result =
        live_pipeline.run(benchmarks::bv6().circuit, SeedSequence(kSeed));

    ASSERT_FALSE(live_result.degradation.members.empty());
    bool wall_fault = false;
    for (const auto &event : live_result.degradation.faults)
        wall_fault |=
            event.kind == resilience::FaultKind::WallClockAbandoned;
    EXPECT_TRUE(wall_fault);

    const JournalReplay replay = JournalReplay::load(path);
    EXPECT_FALSE(replay.wallAbandons(0).empty());

    // Replay: no watchdog, no fake clock — only the recorded fires,
    // forced. Bit-identical to the live run at any jobs value.
    for (const int jobs : {1, 4}) {
        EdmConfig cfg;
        cfg.totalShots = live.totalShots;
        cfg.shotBatch = live.shotBatch;
        cfg.jobs = jobs;
        cfg.resilience.minTrialsPerMember = 1;
        cfg.resilience.forcedWallAbandons = replay.wallAbandons(0);
        const EdmPipeline pipeline(device, cfg);
        const EdmResult replayed = pipeline.run(
            benchmarks::bv6().circuit, SeedSequence(kSeed));

        expectSameReport(replayed.degradation, live_result.degradation);
        EXPECT_EQ(replayed.edm.probabilities(),
                  live_result.edm.probabilities());
        EXPECT_EQ(replayed.wedm.probabilities(),
                  live_result.wedm.probabilities());
        ASSERT_EQ(replayed.members.size(), live_result.members.size());
        for (std::size_t m = 0; m < replayed.members.size(); ++m) {
            EXPECT_EQ(replayed.members[m].shots,
                      live_result.members[m].shots);
            EXPECT_EQ(replayed.members[m].failed,
                      live_result.members[m].failed);
        }
    }
    std::remove(path.c_str());
}

TEST(JournalWatchdogTest, ReplayFaultsOnlyModeReproducesAnExperiment)
{
    // End-to-end --replay-faults: record a live watchdog run through
    // the experiment driver, then re-execute with only the recorded
    // fires forced. wallDeadlineMs and the injected clock are
    // operational knobs, excluded from the fingerprint, so the replay
    // config legitimately omits them.
    const runtime::ManualClock clock(0.0, 40.0);
    ExperimentConfig live = smallExperiment(1);
    live.totalShots = 16384; // two 2048-shot batches per member
    live.resilience.wallDeadlineMs = 25.0;
    live.resilience.clock = &clock;
    live.resilience.minTrialsPerMember = 1;

    const std::string path = tmpPath("exp_watchdog.bin");
    const hw::Device device = hw::Device::melbourne(kSeed);
    ExperimentSummary recorded;
    {
        Journal journal = Journal::create(
            path, core::experimentFingerprint(
                      device, benchmarks::bv6(), live, kSeed));
        live.journal = &journal;
        recorded = runBv6(live);
    }
    EXPECT_GT(recorded.degradedRounds, 0u);

    const JournalReplay replay = JournalReplay::load(path);
    for (const int jobs : {1, 4}) {
        ExperimentConfig config = smallExperiment(jobs);
        config.totalShots = live.totalShots;
        config.resilience.minTrialsPerMember = 1;
        config.replay = &replay;
        config.replayFaultsOnly = true;
        expectSameSummary(runBv6(config), recorded);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace qedm
