/**
 * @file
 * Unit tests for qedm_hw: topology graphs, calibration tables, drift,
 * and the correlated noise model.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "hw/calibration.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"
#include "hw/noise_model.hpp"
#include "hw/topology.hpp"

namespace qedm::hw {
namespace {

TEST(Topology, LinearChain)
{
    const Topology t = Topology::linear(5);
    EXPECT_EQ(t.numQubits(), 5);
    EXPECT_EQ(t.numEdges(), 4u);
    EXPECT_TRUE(t.adjacent(0, 1));
    EXPECT_TRUE(t.adjacent(1, 0));
    EXPECT_FALSE(t.adjacent(0, 2));
    EXPECT_EQ(t.degree(0), 1);
    EXPECT_EQ(t.degree(2), 2);
    EXPECT_TRUE(t.isConnected());
}

TEST(Topology, Ring)
{
    const Topology t = Topology::ring(6);
    EXPECT_EQ(t.numEdges(), 6u);
    EXPECT_TRUE(t.adjacent(0, 5));
    for (int q = 0; q < 6; ++q)
        EXPECT_EQ(t.degree(q), 2);
    EXPECT_THROW(Topology::ring(2), UserError);
}

TEST(Topology, Grid)
{
    const Topology t = Topology::grid(2, 3);
    EXPECT_EQ(t.numQubits(), 6);
    EXPECT_EQ(t.numEdges(), 7u); // 4 horizontal + 3 vertical
    EXPECT_TRUE(t.adjacent(0, 3));
    EXPECT_TRUE(t.adjacent(0, 1));
    EXPECT_FALSE(t.adjacent(0, 4));
}

TEST(Topology, FullyConnected)
{
    const Topology t = Topology::fullyConnected(5);
    EXPECT_EQ(t.numEdges(), 10u);
    for (int a = 0; a < 5; ++a) {
        for (int b = a + 1; b < 5; ++b)
            EXPECT_TRUE(t.adjacent(a, b));
    }
}

TEST(Topology, MelbourneShape)
{
    const Topology t = Topology::melbourne();
    EXPECT_EQ(t.numQubits(), 14);
    EXPECT_EQ(t.numEdges(), 18u);
    EXPECT_TRUE(t.isConnected());
    // End qubits of the ladder have degree 1 or 2; interior up to 3.
    for (int q = 0; q < 14; ++q)
        EXPECT_LE(t.degree(q), 3);
    EXPECT_TRUE(t.adjacent(0, 1));
    EXPECT_TRUE(t.adjacent(1, 13));
    EXPECT_TRUE(t.adjacent(6, 8));
    EXPECT_FALSE(t.adjacent(0, 13));
    EXPECT_FALSE(t.adjacent(6, 7)); // 7 only couples to 8
}

TEST(Topology, MelbourneIsBipartite)
{
    // The ladder has only even cycles; 2-color it via BFS parity.
    const Topology t = Topology::melbourne();
    std::vector<int> color(14, -1);
    color[0] = 0;
    std::vector<int> stack{0};
    while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (int v : t.neighbors(u)) {
            if (color[v] < 0) {
                color[v] = 1 - color[u];
                stack.push_back(v);
            } else {
                EXPECT_NE(color[v], color[u])
                    << "odd cycle through edge " << u << "-" << v;
            }
        }
    }
}

TEST(Topology, TokyoShape)
{
    const Topology t = Topology::tokyo();
    EXPECT_EQ(t.numQubits(), 20);
    EXPECT_TRUE(t.isConnected());
    // Diagonals give interior qubits degree up to 6 and create odd
    // cycles (unlike the bipartite melbourne ladder).
    int max_degree = 0;
    for (int q = 0; q < 20; ++q)
        max_degree = std::max(max_degree, t.degree(q));
    EXPECT_GE(max_degree, 5);
    EXPECT_TRUE(t.adjacent(1, 7)); // a diagonal
    EXPECT_TRUE(t.adjacent(0, 5));
    EXPECT_FALSE(t.adjacent(0, 19));
}

TEST(Topology, HeavyHexShape)
{
    const Topology t = Topology::heavyHex27();
    EXPECT_EQ(t.numQubits(), 27);
    EXPECT_EQ(t.numEdges(), 28u);
    EXPECT_TRUE(t.isConnected());
    // Heavy-hex qubits have degree at most 3.
    for (int q = 0; q < 27; ++q)
        EXPECT_LE(t.degree(q), 3);
}

TEST(Topology, DistanceAndPath)
{
    const Topology t = Topology::melbourne();
    EXPECT_EQ(t.distance(0, 0), 0);
    EXPECT_EQ(t.distance(0, 1), 1);
    EXPECT_EQ(t.distance(0, 7), 8); // opposite corners of the ladder
    const auto path = t.shortestPath(0, 3);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 3);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_TRUE(t.adjacent(path[i], path[i + 1]));
}

TEST(Topology, DisconnectedDistance)
{
    const Topology t(4, {{0, 1}, {2, 3}});
    EXPECT_EQ(t.distance(0, 3), -1);
    EXPECT_TRUE(t.shortestPath(0, 3).empty());
    EXPECT_FALSE(t.isConnected());
}

TEST(Topology, ConnectedSubset)
{
    const Topology t = Topology::linear(6);
    EXPECT_TRUE(t.isConnectedSubset({1, 2, 3}));
    EXPECT_FALSE(t.isConnectedSubset({0, 2}));
    EXPECT_TRUE(t.isConnectedSubset({}));
    EXPECT_TRUE(t.isConnectedSubset({4}));
}

TEST(Topology, EdgeIndexCanonical)
{
    const Topology t = Topology::linear(4);
    const int e = t.edgeIndex(1, 2);
    EXPECT_GE(e, 0);
    EXPECT_EQ(t.edgeIndex(2, 1), e);
    EXPECT_EQ(t.edgeIndex(0, 3), -1);
}

TEST(Topology, RejectsInvalidEdges)
{
    EXPECT_THROW(Topology(3, {{0, 3}}), UserError);
    EXPECT_THROW(Topology(3, {{1, 1}}), UserError);
    // Duplicates (either order) are deduplicated, not an error.
    const Topology t(3, {{0, 1}, {1, 0}});
    EXPECT_EQ(t.numEdges(), 1u);
}

TEST(Calibration, MelbourneTableProperties)
{
    const Calibration cal = Calibration::melbourne();
    EXPECT_EQ(cal.numQubits(), 14u);
    EXPECT_EQ(cal.numEdges(), 18u);
    // Footnote 3: Q11 and Q12 have pathological readout.
    EXPECT_GT(cal.qubit(11).readoutP10, 0.25);
    EXPECT_GT(cal.qubit(12).readoutP10, 0.15);
    // Healthy qubits stay below 10% symmetrized readout error.
    EXPECT_LT(cal.qubit(2).readoutError(), 0.10);
    // Readout is biased: p10 > p01 everywhere (state-dependent bias).
    for (int q = 0; q < 14; ++q)
        EXPECT_GT(cal.qubit(q).readoutP10, cal.qubit(q).readoutP01);
    // T2 <= 2 T1 physical constraint.
    for (int q = 0; q < 14; ++q)
        EXPECT_LE(cal.qubit(q).t2Us, 2.0 * cal.qubit(q).t1Us);
}

TEST(Calibration, SampleRespectsSpread)
{
    const Topology topo = Topology::melbourne();
    CalibrationSpec spec;
    spec.spread = 0.8;
    Rng rng(3);
    const Calibration cal = Calibration::sample(topo, spec, rng);
    // Rates vary across qubits.
    std::set<double> distinct;
    for (int q = 0; q < 14; ++q)
        distinct.insert(cal.qubit(q).error1q);
    EXPECT_GT(distinct.size(), 10u);
    // All probabilities clamped to a sane range.
    for (std::size_t e = 0; e < cal.numEdges(); ++e) {
        EXPECT_GT(cal.edge(e).cxError, 0.0);
        EXPECT_LT(cal.edge(e).cxError, 0.5);
    }
}

TEST(Calibration, DriftPerturbsButPreservesScale)
{
    const Calibration cal = Calibration::melbourne();
    Rng rng(4);
    const Calibration drifted = cal.drifted(rng, 0.10);
    int changed = 0;
    for (int q = 0; q < 14; ++q) {
        if (drifted.qubit(q).error1q != cal.qubit(q).error1q)
            ++changed;
        // Within a factor ~2 for 10% log-normal drift.
        EXPECT_LT(drifted.qubit(q).error1q,
                  cal.qubit(q).error1q * 3.0);
        EXPECT_GT(drifted.qubit(q).error1q,
                  cal.qubit(q).error1q / 3.0);
        EXPECT_LE(drifted.qubit(q).t2Us, 2.0 * drifted.qubit(q).t1Us);
    }
    EXPECT_EQ(changed, 14);
    // Zero drift is the identity.
    Rng rng2(4);
    const Calibration frozen = cal.drifted(rng2, 0.0);
    EXPECT_DOUBLE_EQ(frozen.qubit(5).error1q, cal.qubit(5).error1q);
}

TEST(Calibration, MeanHelpers)
{
    const Calibration cal = Calibration::melbourne();
    EXPECT_GT(cal.meanCxError(), 0.01);
    EXPECT_LT(cal.meanCxError(), 0.10);
    EXPECT_GT(cal.meanReadoutError(), 0.02);
    EXPECT_LT(cal.meanReadoutError(), 0.15);
}

TEST(NoiseModel, IdealIsAllZero)
{
    const Topology topo = Topology::melbourne();
    const NoiseModel nm = NoiseModel::ideal(topo);
    for (int q = 0; q < 14; ++q)
        EXPECT_EQ(nm.overRotation1q(q), 0.0);
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        EXPECT_EQ(nm.overRotation(e), 0.0);
        EXPECT_EQ(nm.controlPhase(e), 0.0);
        EXPECT_TRUE(nm.crosstalk(e).empty());
    }
    EXPECT_TRUE(nm.correlatedReadout().empty());
    EXPECT_EQ(nm.spec().stochasticScale, 0.0);
    EXPECT_FALSE(nm.spec().enableDecoherence);
}

TEST(NoiseModel, SampleIsSeedDeterministic)
{
    const Topology topo = Topology::melbourne();
    const Calibration cal = Calibration::melbourne();
    const NoiseSpec spec;
    Rng r1(9), r2(9);
    const NoiseModel a = NoiseModel::sample(topo, cal, spec, r1);
    const NoiseModel b = NoiseModel::sample(topo, cal, spec, r2);
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        EXPECT_DOUBLE_EQ(a.overRotation(e), b.overRotation(e));
        EXPECT_DOUBLE_EQ(a.controlPhase(e), b.controlPhase(e));
    }
}

TEST(NoiseModel, CoherentScaleZeroKillsSystematicTerms)
{
    const Topology topo = Topology::melbourne();
    const Calibration cal = Calibration::melbourne();
    NoiseSpec spec;
    spec.coherentScale = 0.0;
    Rng rng(5);
    const NoiseModel nm = NoiseModel::sample(topo, cal, spec, rng);
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        EXPECT_EQ(nm.overRotation(e), 0.0);
        EXPECT_EQ(nm.controlPhase(e), 0.0);
        EXPECT_TRUE(nm.crosstalk(e).empty());
    }
}

TEST(NoiseModel, CrosstalkSpectatorsAreNeighbors)
{
    const Topology topo = Topology::melbourne();
    const Calibration cal = Calibration::melbourne();
    Rng rng(6);
    const NoiseModel nm =
        NoiseModel::sample(topo, cal, NoiseSpec{}, rng);
    for (std::size_t e = 0; e < topo.numEdges(); ++e) {
        const Edge edge = topo.edges()[e];
        for (const auto &xt : nm.crosstalk(e)) {
            EXPECT_NE(xt.spectator, edge.a);
            EXPECT_NE(xt.spectator, edge.b);
            EXPECT_TRUE(topo.adjacent(xt.spectator, edge.a) ||
                        topo.adjacent(xt.spectator, edge.b));
        }
    }
}

TEST(NoiseModel, CorrelatedReadoutOnCoupledPairs)
{
    const Topology topo = Topology::melbourne();
    const Calibration cal = Calibration::melbourne();
    Rng rng(8);
    const NoiseModel nm =
        NoiseModel::sample(topo, cal, NoiseSpec{}, rng);
    for (const auto &cr : nm.correlatedReadout()) {
        EXPECT_TRUE(topo.adjacent(cr.qubitA, cr.qubitB));
        EXPECT_GE(cr.jointFlipProb, 0.0);
        EXPECT_LE(cr.jointFlipProb,
                  nm.spec().correlatedReadoutMax *
                      nm.spec().correlatedReadoutScale);
    }
}

TEST(Device, MelbournePreset)
{
    const Device d = Device::melbourne(7);
    EXPECT_EQ(d.numQubits(), 14);
    EXPECT_EQ(d.name(), "ibmq-14-model");
    // Same seed -> identical physics.
    const Device d2 = Device::melbourne(7);
    EXPECT_DOUBLE_EQ(d.noise().overRotation(0),
                     d2.noise().overRotation(0));
    // Different seed -> different physics.
    const Device d3 = Device::melbourne(8);
    EXPECT_NE(d.noise().overRotation(0), d3.noise().overRotation(0));
}

TEST(Device, IdealPreset)
{
    const Device d = Device::idealMelbourne();
    EXPECT_EQ(d.calibration().qubit(0).error1q, 0.0);
    EXPECT_EQ(d.calibration().qubit(11).readoutP10, 0.0);
    EXPECT_EQ(d.calibration().edge(0).cxError, 0.0);
}

TEST(Device, DriftedRoundKeepsNoisePhysics)
{
    const Device d = Device::melbourne(7);
    Rng rng(10);
    const Device round2 = d.driftedRound(rng);
    // Calibration moved...
    EXPECT_NE(round2.calibration().qubit(0).error1q,
              d.calibration().qubit(0).error1q);
    // ...but systematic noise terms (device physics) are unchanged.
    for (std::size_t e = 0; e < d.topology().numEdges(); ++e) {
        EXPECT_DOUBLE_EQ(round2.noise().overRotation(e),
                         d.noise().overRotation(e));
    }
}

TEST(Device, SyntheticFactory)
{
    const Device d =
        Device::synthetic("test-grid", Topology::grid(3, 3),
                          CalibrationSpec{}, NoiseSpec{}, 42);
    EXPECT_EQ(d.numQubits(), 9);
    EXPECT_EQ(d.name(), "test-grid");
}

TEST(Device, WithNoiseAndCalibrationSwap)
{
    const Device d = Device::melbourne(7);
    const Device ideal_noise =
        d.withNoise(NoiseModel::ideal(d.topology()));
    EXPECT_EQ(ideal_noise.noise().spec().stochasticScale, 0.0);
    Calibration cal = Calibration::melbourne();
    cal.qubit(0).error1q = 0.123;
    const Device swapped = d.withCalibration(cal);
    EXPECT_DOUBLE_EQ(swapped.calibration().qubit(0).error1q, 0.123);
}

TEST(Topology, HeavyHex127Shape)
{
    const Topology t = Topology::heavyHex127();
    EXPECT_EQ(t.numQubits(), 127); // ibm_washington / Eagle count
    EXPECT_TRUE(t.isConnected());
    for (int q = 0; q < t.numQubits(); ++q)
        EXPECT_LE(t.degree(q), 3);
    // Heavy-hex is bipartite (hexagonal cells with degree-2 bridges),
    // so it contains no odd cycle; a 2-coloring must succeed.
    std::vector<int> color(static_cast<std::size_t>(t.numQubits()), -1);
    std::vector<int> stack{0};
    color[0] = 0;
    while (!stack.empty()) {
        const int v = stack.back();
        stack.pop_back();
        for (int u : t.neighbors(v)) {
            if (color[u] == -1) {
                color[u] = 1 - color[v];
                stack.push_back(u);
            }
            EXPECT_NE(color[u], color[v]);
        }
    }
}

TEST(Topology, HeavyHex433Shape)
{
    const Topology t = Topology::heavyHex433();
    EXPECT_EQ(t.numQubits(), 433); // ibm_seattle / Osprey count
    EXPECT_TRUE(t.isConnected());
    for (int q = 0; q < t.numQubits(); ++q)
        EXPECT_LE(t.degree(q), 3);
}

TEST(Topology, HeavyHexRejectsBadDimensions)
{
    EXPECT_THROW(Topology::heavyHex(2, 7), UserError);  // even rows
    EXPECT_THROW(Topology::heavyHex(5, 8), UserError);  // cols % 4 != 3
    EXPECT_THROW(Topology::heavyHex(1, 7), UserError);  // too few rows
}

TEST(Topology, LazyDistancesMatchEagerBfs)
{
    // 127 qubits sits above kEagerDistanceMaxQubits, so distance()
    // runs per-source BFS on demand; it must agree with the eager
    // matrix a small topology would have produced. Compare against an
    // independently-run BFS via shortestPath lengths.
    const Topology t = Topology::heavyHex127();
    ASSERT_GT(t.numQubits(), Topology::kEagerDistanceMaxQubits);
    for (int a : {0, 17, 63, 126}) {
        for (int b : {0, 5, 64, 126}) {
            const auto path = t.shortestPath(a, b);
            ASSERT_FALSE(path.empty());
            EXPECT_EQ(t.distance(a, b),
                      static_cast<int>(path.size()) - 1);
            EXPECT_EQ(t.distance(a, b), t.distance(b, a));
        }
    }
}

TEST(DeviceView, FullViewMatchesDevice)
{
    const Device d = Device::melbourne(3);
    const DeviceView full(d);
    EXPECT_TRUE(full.isFull());
    EXPECT_EQ(full.numQubits(), d.numQubits());
    EXPECT_EQ(full.numAllowed(), d.numQubits());
    EXPECT_EQ(full.maskPtr(), nullptr);
    EXPECT_EQ(full.fingerprint(), d.fingerprint());
    for (int q = 0; q < d.numQubits(); ++q)
        EXPECT_TRUE(full.allowed(q));
}

TEST(DeviceView, RestrictedViewMasksQubits)
{
    const Device d = Device::melbourne(3);
    const DeviceView view(d, {0, 1, 2, 12, 13});
    EXPECT_FALSE(view.isFull());
    EXPECT_EQ(view.numAllowed(), 5);
    EXPECT_NE(view.maskPtr(), nullptr);
    EXPECT_TRUE(view.allowed(1));
    EXPECT_FALSE(view.allowed(7));
    EXPECT_NE(view.fingerprint(), d.fingerprint());
    EXPECT_EQ(view.allowedQubits(),
              (std::vector<int>{0, 1, 2, 12, 13}));
}

TEST(DeviceView, ExplicitFullRegionEqualsFullView)
{
    // Listing every qubit explicitly is detected as a full view, so it
    // shares the device fingerprint (and hence all caches).
    const Device d = Device::melbourne(3);
    std::vector<int> all;
    for (int q = 0; q < d.numQubits(); ++q)
        all.push_back(q);
    const DeviceView view(d, all);
    EXPECT_TRUE(view.isFull());
    EXPECT_EQ(view.maskPtr(), nullptr);
    EXPECT_EQ(view.fingerprint(), d.fingerprint());
}

TEST(DeviceView, FingerprintDependsOnRegion)
{
    const Device d = Device::melbourne(3);
    const DeviceView a(d, {0, 1, 2});
    const DeviceView b(d, {0, 1, 3});
    const DeviceView a_again(d, {2, 1, 0, 1}); // order/dups irrelevant
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.fingerprint(), a_again.fingerprint());
}

TEST(DeviceView, RejectsBadRegions)
{
    const Device d = Device::melbourne(3);
    EXPECT_THROW(DeviceView(d, std::vector<int>{}), UserError);
    EXPECT_THROW(DeviceView(d, {0, 14}), UserError);
    EXPECT_THROW(DeviceView(d, {-1}), UserError);
}

} // namespace
} // namespace qedm::hw
