/**
 * @file
 * Unit tests for the variational module: max-cut accounting, QAOA
 * circuit construction, and the pattern-search optimizer.
 */

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/executor.hpp"
#include "variational/maxcut.hpp"
#include "variational/qaoa.hpp"

namespace qedm::variational {
namespace {

TEST(Maxcut, CutValueCountsCrossingEdges)
{
    const hw::Topology path = hw::Topology::linear(4);
    EXPECT_EQ(cutValue(path, 0b0000), 0);
    EXPECT_EQ(cutValue(path, 0b1111), 0);
    EXPECT_EQ(cutValue(path, 0b0101), 3); // alternating cuts all edges
    EXPECT_EQ(cutValue(path, 0b0001), 1);
    EXPECT_THROW(cutValue(path, 0b10000), UserError);
}

TEST(Maxcut, MaxCutOfPathAndRing)
{
    EXPECT_EQ(maxCutValue(hw::Topology::linear(5)), 4);
    EXPECT_EQ(maxCutValue(hw::Topology::ring(6)), 6);
    // Odd ring is frustrated: one edge uncut.
    EXPECT_EQ(maxCutValue(hw::Topology::ring(5)), 4);
}

TEST(Maxcut, OptimalCutsOfPathAreTheTwoAlternations)
{
    const auto cuts = optimalCuts(hw::Topology::linear(4));
    ASSERT_EQ(cuts.size(), 2u);
    EXPECT_EQ(cuts[0], 0b0101u);
    EXPECT_EQ(cuts[1], 0b1010u);
}

TEST(Maxcut, ExpectedCutUnderDistribution)
{
    const hw::Topology path = hw::Topology::linear(2);
    // 50% cut / 50% uncut -> expectation 0.5.
    auto d = stats::Distribution(2);
    d.setProb(0b00, 0.5);
    d.setProb(0b01, 0.5);
    EXPECT_DOUBLE_EQ(expectedCut(path, d), 0.5);
    EXPECT_DOUBLE_EQ(approximationRatio(path, d), 0.5);
}

TEST(Maxcut, ApproximationRatioRequiresEdges)
{
    const hw::Topology isolated(3, {});
    EXPECT_THROW(
        approximationRatio(isolated, stats::Distribution::uniform(3)),
        UserError);
}

TEST(Qaoa, CircuitShape)
{
    const hw::Topology ring = hw::Topology::ring(4);
    QaoaAngles angles{{0.5, 0.7}, {0.3, 0.2}};
    const auto c = qaoaCircuit(ring, angles);
    const auto counts = c.countGates();
    // Per layer: 2 CX per edge.
    EXPECT_EQ(counts.twoQubit, 2 * 4 * 2);
    EXPECT_EQ(counts.measure, 4);
    // Hs + per-layer(RZ per edge + RX per qubit).
    EXPECT_EQ(counts.singleQubit, 4 + 2 * (4 + 4));
}

TEST(Qaoa, AngleValidation)
{
    const hw::Topology ring = hw::Topology::ring(4);
    EXPECT_THROW(qaoaCircuit(ring, QaoaAngles{{0.5}, {}}), UserError);
    EXPECT_THROW(qaoaCircuit(ring, QaoaAngles{{}, {}}), UserError);
}

TEST(Qaoa, UniformAtZeroAngles)
{
    // gamma = beta = 0 leaves the |+>^n state: uniform output,
    // expected cut = half the edges.
    const hw::Topology path = hw::Topology::linear(4);
    const auto c = qaoaCircuit(path, QaoaAngles{{0.0}, {0.0}});
    const auto dist = sim::idealDistribution(c);
    EXPECT_NEAR(expectedCut(path, dist), 1.5, 1e-9);
}

TEST(Qaoa, OptimizerBeatsRandomStart)
{
    const hw::Topology path = hw::Topology::linear(5);
    const QaoaObjective ideal_objective =
        [&](const circuit::Circuit &c) {
            return expectedCut(path, sim::idealDistribution(c));
        };
    OptimizerConfig config;
    config.maxEvaluations = 150;
    Rng rng(3);
    const auto result =
        optimizeQaoa(path, 1, ideal_objective, config, rng);
    ASSERT_GE(result.trace.size(), 1u);
    // Strict improvement over the random start, and a respectable
    // single-layer approximation ratio (> 0.69 for paths).
    EXPECT_GE(result.bestObjective, result.trace.front());
    EXPECT_GT(result.bestObjective / maxCutValue(path), 0.69);
    EXPECT_LE(result.evaluations, config.maxEvaluations);
}

TEST(Qaoa, TwoLayersBeatOne)
{
    const hw::Topology ring = hw::Topology::ring(4);
    const QaoaObjective ideal_objective =
        [&](const circuit::Circuit &c) {
            return expectedCut(ring, sim::idealDistribution(c));
        };
    OptimizerConfig config;
    config.maxEvaluations = 250;
    Rng rng1(5), rng2(5);
    const auto p1 = optimizeQaoa(ring, 1, ideal_objective, config,
                                 rng1);
    const auto p2 = optimizeQaoa(ring, 2, ideal_objective, config,
                                 rng2);
    EXPECT_GE(p2.bestObjective, p1.bestObjective - 0.05);
}

TEST(Qaoa, TraceIsMonotone)
{
    const hw::Topology path = hw::Topology::linear(4);
    const QaoaObjective ideal_objective =
        [&](const circuit::Circuit &c) {
            return expectedCut(path, sim::idealDistribution(c));
        };
    Rng rng(7);
    const auto result = optimizeQaoa(path, 1, ideal_objective,
                                     OptimizerConfig{}, rng);
    for (std::size_t i = 1; i < result.trace.size(); ++i)
        EXPECT_GE(result.trace[i], result.trace[i - 1]);
}

TEST(Qaoa, OptimizerValidatesConfig)
{
    const hw::Topology path = hw::Topology::linear(3);
    const QaoaObjective objective = [](const circuit::Circuit &) {
        return 0.0;
    };
    Rng rng(1);
    OptimizerConfig bad;
    bad.maxEvaluations = 0;
    EXPECT_THROW(optimizeQaoa(path, 1, objective, bad, rng), UserError);
    bad = OptimizerConfig{};
    bad.minStep = 1.0;
    bad.initialStep = 0.1;
    EXPECT_THROW(optimizeQaoa(path, 1, objective, bad, rng), UserError);
    EXPECT_THROW(optimizeQaoa(path, 0, objective, OptimizerConfig{},
                              rng),
                 UserError);
}

} // namespace
} // namespace qedm::variational
