/**
 * @file
 * Failure-injection and boundary tests across modules: the error
 * paths a robust library must reject loudly, plus degenerate inputs
 * that must degrade gracefully.
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "circuit/qasm_parser.hpp"
#include "common/error.hpp"
#include "core/edm.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/lookahead_router.hpp"
#include "transpile/twirl.hpp"

namespace qedm {
namespace {

using circuit::Circuit;

TEST(ExecutorEdge, MeasurelessCircuitRejected)
{
    const hw::Device device = hw::Device::idealMelbourne();
    const sim::Executor exec(device);
    Circuit c(14, 1);
    c.h(0);
    Rng rng(1);
    EXPECT_THROW(exec.run(c, 10, rng), UserError);
    EXPECT_THROW(exec.exactDistribution(c), UserError);
}

TEST(ExecutorEdge, DuplicateClbitRejected)
{
    const hw::Device device = hw::Device::idealMelbourne();
    const sim::Executor exec(device);
    Circuit c(14, 1);
    c.measure(0, 0);
    c.measure(1, 0);
    Rng rng(1);
    EXPECT_THROW(exec.run(c, 10, rng), UserError);
}

TEST(ExecutorEdge, ExactSimulationBoundedByActiveQubits)
{
    const hw::Device device = hw::Device::idealMelbourne();
    const sim::Executor exec(device);
    // 11 active qubits: too many for the density matrix.
    Circuit c(14, 11);
    for (int q = 0; q < 11; ++q)
        c.h(q).measure(q, q);
    EXPECT_THROW(exec.exactDistribution(c), UserError);
    // But trajectory execution handles it fine.
    Rng rng(1);
    EXPECT_NO_THROW(exec.run(c, 10, rng));
}

TEST(ExecutorEdge, ZeroShotsRejected)
{
    const hw::Device device = hw::Device::idealMelbourne();
    const sim::Executor exec(device);
    Circuit c(14, 1);
    c.measure(0, 0);
    Rng rng(1);
    EXPECT_THROW(exec.run(c, 0, rng), UserError);
}

TEST(EdmEdge, EntropyMergeOfPointMassesFallsBackToUniform)
{
    core::MemberResult a, b;
    a.output = stats::Distribution::pointMass(2, 1);
    b.output = stats::Distribution::pointMass(2, 2);
    // Both entropies are zero; the rule must not divide by zero.
    const auto merged = core::EdmPipeline::merge(
        {a, b}, core::MergeRule::EntropyWeighted);
    EXPECT_NEAR(merged.prob(1), 0.5, 1e-12);
    EXPECT_NEAR(merged.prob(2), 0.5, 1e-12);
}

TEST(EdmEdge, SingleMemberEnsembleWorks)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EdmConfig config;
    config.ensemble.size = 1;
    config.totalShots = 500;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(3);
    const auto result =
        pipeline.run(benchmarks::greycode().circuit, rng);
    EXPECT_EQ(result.members.size(), 1u);
    // EDM of one member is that member.
    EXPECT_NEAR(stats::totalVariation(result.edm,
                                      result.members[0].output),
                0.0, 1e-12);
    EXPECT_DOUBLE_EQ(result.wedmWeights[0], 1.0);
}

TEST(EdmEdge, MoreMembersRequestedThanShots)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EdmConfig config;
    config.ensemble.size = 4;
    config.totalShots = 2; // fewer shots than members
    const core::EdmPipeline pipeline(device, config);
    Rng rng(3);
    // Every member still gets at least one shot.
    const auto result =
        pipeline.run(benchmarks::greycode().circuit, rng);
    for (const auto &m : result.members)
        EXPECT_GE(m.shots, 1u);
}

TEST(TwirlEdge, CircuitWithoutTwoQubitGatesUnchanged)
{
    Circuit c(2, 2);
    c.h(0).x(1).measureAll();
    Rng rng(5);
    const auto twirled = transpile::pauliTwirl(c, rng);
    EXPECT_EQ(twirled.size(), c.size());
    EXPECT_EQ(twirled.toQasm(), c.toQasm());
}

TEST(LookaheadEdge, ZeroWindowWeightStillRoutes)
{
    const hw::Device device = hw::Device::melbourne(7);
    transpile::LookaheadConfig config;
    config.windowWeight = 0.0;
    const transpile::LookaheadRouter router(device, config);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const auto result = router.route(c, {0, 9});
    EXPECT_TRUE(result.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
}

TEST(QasmEdge, BarrierWithOperandListAccepted)
{
    const auto c = circuit::parseQasm(
        "qreg q[3];\nbarrier q[0],q[1];\nh q[2];\n");
    EXPECT_EQ(c.gates()[0].kind, circuit::OpKind::Barrier);
}

TEST(BitsEdge, SingleBitOutcomes)
{
    const auto all = allOutcomes(1);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(toBitstring(all[1], 1), "1");
}

TEST(DistributionEdge, ToStringHonorsThreshold)
{
    auto d = stats::Distribution(2);
    d.setProb(0, 0.999);
    d.setProb(3, 0.001);
    d.normalize();
    EXPECT_EQ(d.toString(0.01).find("11"), std::string::npos);
    EXPECT_NE(d.toString(0.0001).find("11"), std::string::npos);
}

TEST(DeviceEdge, DriftValidation)
{
    const hw::Device device = hw::Device::melbourne(2);
    Rng rng(1);
    EXPECT_THROW(device.calibration().drifted(rng, -0.1), UserError);
}

TEST(TopologyEdge, SingleQubitTopology)
{
    const hw::Topology t(1, {});
    EXPECT_TRUE(t.isConnected());
    EXPECT_EQ(t.numEdges(), 0u);
    EXPECT_EQ(t.distance(0, 0), 0);
}

TEST(CountsEdge, MergePreservesWidthValidation)
{
    stats::Counts wide(4), narrow(3);
    narrow.add(7);
    EXPECT_THROW(narrow.add(8), UserError);
    wide.add(8);
    EXPECT_THROW(wide.merge(narrow), UserError);
}

TEST(BenchmarkEdge, ExpectedOutputsWithinWidth)
{
    for (const auto &b : benchmarks::paperSuite()) {
        EXPECT_LT(b.expected, Outcome(1) << b.outputWidth) << b.name;
    }
}

} // namespace
} // namespace qedm
