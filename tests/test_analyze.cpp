/**
 * @file
 * Tests for the qedm_analyze static-analysis engine: tokenizer edge
 * cases (raw strings, block comments, line continuations), a
 * positive and negative case for every registered rule, the layering
 * and cycle graph rules, baseline fingerprinting (line-drift
 * immunity, staleness, justification hygiene), SARIF 2.1.0
 * structure, and the byte-identical `--jobs 1` vs `--jobs 4`
 * determinism contract over the real repository tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "qedm_analyze/baseline.hpp"
#include "qedm_analyze/engine.hpp"
#include "qedm_analyze/json.hpp"
#include "qedm_analyze/lexer.hpp"
#include "qedm_analyze/sarif.hpp"

namespace qa = qedm::analyze;

namespace {

std::vector<qa::Finding>
findingsFor(const std::string &rel_path, const std::string &text)
{
    const qa::Report report =
        qa::analyzeSources({{rel_path, text}}, nullptr, 1);
    return report.findings;
}

int
countRule(const std::vector<qa::Finding> &findings,
          const std::string &rule)
{
    return static_cast<int>(
        std::count_if(findings.begin(), findings.end(),
                      [&](const qa::Finding &f) {
                          return f.rule == rule;
                      }));
}

// ---------------------------------------------------------------------
// Tokenizer

TEST(Lexer, RawStringContentsAreOneToken)
{
    // The raw string holds comment openers, quotes, and a fake
    // violation; none of it may leak into code tokens.
    const auto tokens = qa::tokenize(
        "auto s = R\"delim(std::rand() /* \" )\" )delim\"; int x;");
    int raw = 0;
    for (const auto &t : tokens) {
        if (t.kind == qa::TokKind::RawString) {
            ++raw;
            EXPECT_EQ(t.text, "std::rand() /* \" )\" ");
        }
        EXPECT_NE(t.text == "rand" &&
                      t.kind == qa::TokKind::Identifier,
                  true);
    }
    EXPECT_EQ(raw, 1);
    const auto findings =
        findingsFor("src/raw.cpp",
                    "auto s = R\"(std::rand() srand(1))\";\n");
    EXPECT_EQ(countRule(findings, "rng-discipline"), 0);
}

TEST(Lexer, BlockCommentsDoNotNest)
{
    const auto tokens =
        qa::tokenize("/* outer /* still outer */ int x; /* two */");
    std::vector<std::string> idents;
    for (const auto &t : tokens) {
        if (t.kind == qa::TokKind::Identifier)
            idents.push_back(t.text);
    }
    EXPECT_EQ(idents, (std::vector<std::string>{"int", "x"}));
}

TEST(Lexer, LineContinuationsSpliceButKeepLineNumbers)
{
    // `sra\<newline>nd` splices to the single identifier `srand`,
    // and a continued #include still yields one header token.
    const auto tokens = qa::tokenize("sra\\\nnd(7);\n#include \\\n"
                                     "\"transpile/router.hpp\"\nint "
                                     "after;\n");
    bool saw_srand = false;
    bool saw_header = false;
    int after_line = 0;
    for (const auto &t : tokens) {
        if (t.kind == qa::TokKind::Identifier && t.text == "srand")
            saw_srand = true;
        if (t.kind == qa::TokKind::PPHeaderQuote) {
            saw_header = true;
            EXPECT_EQ(t.text, "transpile/router.hpp");
        }
        if (t.kind == qa::TokKind::Identifier && t.text == "after")
            after_line = t.line;
    }
    EXPECT_TRUE(saw_srand);
    EXPECT_TRUE(saw_header);
    EXPECT_EQ(after_line, 5); // physical lines survive the splices
}

TEST(Lexer, DigitSeparatorsAndCharLiterals)
{
    const auto tokens = qa::tokenize("int n = 1'000'000; char c = "
                                     "'x'; char q = '\\'';");
    int numbers = 0;
    int chars = 0;
    for (const auto &t : tokens) {
        if (t.kind == qa::TokKind::Number) {
            ++numbers;
            EXPECT_EQ(t.text, "1'000'000");
        }
        if (t.kind == qa::TokKind::CharLit)
            ++chars;
    }
    EXPECT_EQ(numbers, 1);
    EXPECT_EQ(chars, 2);
}

TEST(Lexer, CommentsKeepStartAndEndLines)
{
    const auto tokens =
        qa::tokenize("/* one\ntwo\nthree */\nint x;\n");
    ASSERT_FALSE(tokens.empty());
    EXPECT_EQ(tokens[0].kind, qa::TokKind::Comment);
    EXPECT_EQ(tokens[0].line, 1);
    EXPECT_EQ(tokens[0].end_line, 3);
}

// ---------------------------------------------------------------------
// Rules: one positive and one negative case each

TEST(Rules, RngDiscipline)
{
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "auto g = std::mt19937(7);\n"),
                        "rng-discipline"),
              1);
    EXPECT_EQ(countRule(findingsFor("src/a.cpp", "srand(7);\n"),
                        "rng-discipline"),
              1);
    // The sanctioned engine home and innocent identifiers stay clean.
    EXPECT_EQ(countRule(findingsFor("src/common/rng/rng.cpp",
                                    "auto g = std::mt19937(7);\n"),
                        "rng-discipline"),
              0);
    EXPECT_EQ(countRule(findingsFor("src/a.cpp", "int my_srand = 1;\n"),
                        "rng-discipline"),
              0);
}

TEST(Rules, RngInKernel)
{
    // The type and draw-shaped member calls are banned in the
    // batched-kernel TUs.
    EXPECT_EQ(countRule(findingsFor("src/sim/batched_statevector.cpp",
                                    "void f(Rng &rng);\n"),
                        "rng-in-kernel"),
              1);
    EXPECT_EQ(countRule(findingsFor("src/sim/lane_kernels_impl.hpp",
                                    "double d = plan->uniform();\n"
                                    "bool b = r.bernoulli(0.5);\n"),
                        "rng-in-kernel"),
              2);
    // A plain identifier spelled like a draw is not a draw.
    EXPECT_EQ(countRule(findingsFor("src/sim/batched_statevector.cpp",
                                    "bool uniform = true;\n"
                                    "uniform = uniform && ok;\n"),
                        "rng-in-kernel"),
              0);
    // The rest of src/sim (shot_plan, executor) may hold an Rng.
    EXPECT_EQ(countRule(findingsFor("src/sim/shot_plan.cpp",
                                    "double d = rng.uniform();\n"),
                        "rng-in-kernel"),
              0);
    EXPECT_EQ(countRule(findingsFor("src/sim/executor.cpp",
                                    "void f(Rng &rng);\n"),
                        "rng-in-kernel"),
              0);
}

TEST(Rules, TimeSeed)
{
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "auto t = std::time(nullptr);\n"),
                        "time-seed"),
              1);
    EXPECT_EQ(
        countRule(findingsFor(
                      "src/a.cpp",
                      "auto t = std::chrono::system_clock::now();\n"),
                  "time-seed"),
        1);
    // steady_clock is the sanctioned timing source; member calls and
    // foreign qualifications are not the C time().
    EXPECT_EQ(
        countRule(findingsFor(
                      "src/a.cpp",
                      "auto t = std::chrono::steady_clock::now();\n"),
                  "time-seed"),
        0);
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "auto t = budget.time();\n"),
                        "time-seed"),
              0);
}

TEST(Rules, WallClock)
{
    // Raw steady_clock reads are banned in result-bearing code: wall
    // time must flow through the injectable runtime::Clock so
    // watchdog decisions stay recordable and replayable.
    EXPECT_EQ(
        countRule(findingsFor(
                      "src/core/a.cpp",
                      "auto t = std::chrono::steady_clock::now();\n"),
                  "wall-clock"),
        1);
    // The sanctioned Clock implementation is the one exemption.
    EXPECT_EQ(
        countRule(findingsFor(
                      "src/runtime/clock.cpp",
                      "auto t = std::chrono::steady_clock::now();\n"),
                  "wall-clock"),
        0);
    // Driver trees are exempt, and unrelated now() calls are not the
    // steady clock.
    EXPECT_EQ(
        countRule(findingsFor(
                      "tools/a.cpp",
                      "auto t = std::chrono::steady_clock::now();\n"),
                  "wall-clock"),
        0);
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "auto t = calendar.now();\n"),
                        "wall-clock"),
              0);
}

TEST(Rules, AssertDiscipline)
{
    EXPECT_EQ(countRule(findingsFor("src/a.cpp", "assert(x > 0);\n"),
                        "assert-discipline"),
              1);
    // Driver trees may assert; static_assert is always fine.
    EXPECT_EQ(countRule(findingsFor("tools/a.cpp",
                                    "assert(x > 0);\n"),
                        "assert-discipline"),
              0);
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "static_assert(sizeof(int) == "
                                    "4);\n"),
                        "assert-discipline"),
              0);
}

TEST(Rules, StdoutDiscipline)
{
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "std::cout << 1;\n"),
                        "stdout-discipline"),
              1);
    EXPECT_EQ(countRule(findingsFor("examples/a.cpp",
                                    "std::cout << 1;\n"),
                        "stdout-discipline"),
              0);
}

TEST(Rules, PragmaOnce)
{
    EXPECT_EQ(countRule(findingsFor("src/a.hpp", "int x;\n"),
                        "pragma-once"),
              1);
    EXPECT_EQ(countRule(findingsFor("src/a.hpp",
                                    "#pragma once\nint x;\n"),
                        "pragma-once"),
              0);
    // Non-headers are exempt.
    EXPECT_EQ(countRule(findingsFor("src/a.cpp", "int x;\n"),
                        "pragma-once"),
              0);
}

TEST(Rules, NakedNew)
{
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "int *p = new int(1);\n"),
                        "naked-new"),
              1);
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "auto p = "
                                    "std::make_unique<int>(1); // "
                                    "new\n"),
                        "naked-new"),
              0);
}

TEST(Rules, DenseDistance)
{
    EXPECT_EQ(countRule(findingsFor("src/core/a.cpp",
                                    "auto m = "
                                    "sharedDistanceMatrix(dev);\n"),
                        "dense-distance"),
              1);
    // The provider's own home is exempt.
    EXPECT_EQ(countRule(findingsFor("src/transpile/distances.cpp",
                                    "auto m = "
                                    "sharedDistanceMatrix(dev);\n"),
                        "dense-distance"),
              0);
}

TEST(Rules, UnorderedIteration)
{
    const std::string bad =
        "#include <unordered_map>\n"
        "std::unordered_map<int, int> table;\n"
        "int f() {\n"
        "    int s = 0;\n"
        "    for (const auto &[k, v] : table)\n"
        "        s += v;\n"
        "    return s;\n"
        "}\n";
    EXPECT_EQ(countRule(findingsFor("src/core/a.cpp", bad),
                        "unordered-iteration"),
              1);
    // Ordered containers iterate deterministically; and the rule
    // only guards the result-bearing modules.
    const std::string good =
        "std::map<int, int> table;\n"
        "int f() {\n"
        "    int s = 0;\n"
        "    for (const auto &[k, v] : table)\n"
        "        s += v;\n"
        "    return s;\n"
        "}\n";
    EXPECT_EQ(countRule(findingsFor("src/core/a.cpp", good),
                        "unordered-iteration"),
              0);
    EXPECT_EQ(countRule(findingsFor("src/hw/a.cpp", bad),
                        "unordered-iteration"),
              0);
}

TEST(Rules, LocalStatic)
{
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "int f() {\n"
                                    "    static int calls = 0;\n"
                                    "    return ++calls;\n"
                                    "}\n"),
                        "local-static"),
              1);
    // const/constexpr locals and the sanctioned *Registry
    // singletons are allowed; so are class-scope statics.
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "int f() {\n"
                                    "    static const int k = 7;\n"
                                    "    return k;\n"
                                    "}\n"),
                        "local-static"),
              0);
    EXPECT_EQ(countRule(findingsFor("src/a.cpp",
                                    "A &shared() {\n"
                                    "    static EspModelRegistry "
                                    "registry;\n"
                                    "    return registry;\n"
                                    "}\n"),
                        "local-static"),
              0);
    EXPECT_EQ(countRule(findingsFor("src/a.hpp",
                                    "#pragma once\n"
                                    "class A {\n"
                                    "    static int shared_;\n"
                                    "};\n"),
                        "local-static"),
              0);
}

TEST(Rules, FloatAccumulate)
{
    EXPECT_EQ(
        countRule(findingsFor("src/core/a.cpp",
                              "double f(const std::vector<double> "
                              "&v) {\n"
                              "    return std::accumulate(v.begin(),"
                              " v.end(), 0.0);\n"
                              "}\n"),
                  "float-accumulate"),
        1);
    // A canonical-order comment within three lines satisfies the
    // rule; integer reductions and member calls never fire.
    EXPECT_EQ(
        countRule(findingsFor("src/core/a.cpp",
                              "double f(const std::vector<double> "
                              "&v) {\n"
                              "    // canonical order: serial "
                              "index-ascending sum\n"
                              "    return std::accumulate(v.begin(),"
                              " v.end(), 0.0);\n"
                              "}\n"),
                  "float-accumulate"),
        0);
    EXPECT_EQ(countRule(findingsFor("src/core/a.cpp",
                                    "int f(const std::vector<int> "
                                    "&v) {\n"
                                    "    return std::accumulate(v."
                                    "begin(), v.end(), 0);\n"
                                    "}\n"),
                        "float-accumulate"),
              0);
    EXPECT_EQ(countRule(findingsFor("src/stats/a.cpp",
                                    "void f(Distribution &m) {\n"
                                    "    m.accumulate(p, 0.5);\n"
                                    "}\n"),
                        "float-accumulate"),
              0);
}

TEST(Rules, HotPathAlloc)
{
    // Allocation inside a `// qedm:hot` function fires — both naked
    // new and std container construction.
    EXPECT_EQ(countRule(findingsFor("src/transpile/a.cpp",
                                    "// qedm:hot\n"
                                    "int f() {\n"
                                    "    std::vector<int> v;\n"
                                    "    int *p = new int(1);\n"
                                    "    return *p;\n"
                                    "}\n"),
                        "hot-path-alloc"),
              2);
    EXPECT_EQ(countRule(findingsFor("src/transpile/a.cpp",
                                    "// qedm:hot\n"
                                    "void f() {\n"
                                    "    auto p = "
                                    "std::make_shared<int>(3);\n"
                                    "    std::map<int, int> m;\n"
                                    "}\n"),
                        "hot-path-alloc"),
              2);
    // The same allocation in an unmarked function stays legal.
    EXPECT_EQ(countRule(findingsFor("src/transpile/a.cpp",
                                    "int f() {\n"
                                    "    std::vector<int> v;\n"
                                    "    return 0;\n"
                                    "}\n"),
                        "hot-path-alloc"),
              0);
    // The marker covers only the next function definition.
    EXPECT_EQ(countRule(findingsFor("src/transpile/a.cpp",
                                    "// qedm:hot\n"
                                    "int f(int x) { return x; }\n"
                                    "int g() { return *new int(0); "
                                    "}\n"),
                        "hot-path-alloc"),
              0);
    // Member access on an existing container is not construction.
    EXPECT_EQ(countRule(findingsFor("src/transpile/a.cpp",
                                    "// qedm:hot\n"
                                    "int f(const Buf &b) {\n"
                                    "    return b.sizes[0];\n"
                                    "}\n"),
                        "hot-path-alloc"),
              0);
    // Outside src/transpile the profile leaves the rule off.
    EXPECT_EQ(countRule(findingsFor("src/core/a.cpp",
                                    "// qedm:hot\n"
                                    "int f() { return *new int(0); "
                                    "}\n"),
                        "hot-path-alloc"),
              0);
}

// ---------------------------------------------------------------------
// Include-graph rules

TEST(Graph, LayeringBackEdgeIsFlagged)
{
    const qa::Report report = qa::analyzeSources(
        {{"src/check/a.cpp", "#include \"transpile/router.hpp\"\n"},
         {"src/transpile/router.hpp", "#pragma once\nint x;\n"}},
        nullptr, 1);
    EXPECT_EQ(countRule(report.findings, "layering"), 1);
}

TEST(Graph, AllowedEdgeIsNotFlagged)
{
    const qa::Report report = qa::analyzeSources(
        {{"src/transpile/a.cpp", "#include \"check/check.hpp\"\n"},
         {"src/check/check.hpp", "#pragma once\nint x;\n"}},
        nullptr, 1);
    EXPECT_EQ(countRule(report.findings, "layering"), 0);
}

TEST(Graph, IncludeCycleIsFlagged)
{
    const qa::Report report = qa::analyzeSources(
        {{"src/hw/a.hpp", "#pragma once\n#include \"hw/b.hpp\"\n"},
         {"src/hw/b.hpp", "#pragma once\n#include \"hw/a.hpp\"\n"}},
        nullptr, 1);
    EXPECT_EQ(countRule(report.findings, "include-cycle"), 1);
}

// ---------------------------------------------------------------------
// Baseline

TEST(Baseline, FingerprintSurvivesLineDrift)
{
    const std::string original = "int f() {\n"
                                 "    static int calls = 0;\n"
                                 "    return ++calls;\n"
                                 "}\n";
    const std::string drifted = "// a new comment\n"
                                "// another new line\n"
                                "int f() {\n"
                                "    static int calls = 0;\n"
                                "    return ++calls;\n"
                                "}\n";
    const auto before = findingsFor("src/a.cpp", original);
    const auto after = findingsFor("src/a.cpp", drifted);
    ASSERT_EQ(before.size(), 1u);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_NE(before[0].line, after[0].line);
    EXPECT_EQ(before[0].context, after[0].context);
    EXPECT_EQ(qa::fingerprintHex(before[0]),
              qa::fingerprintHex(after[0]));

    // The drifted finding is suppressed by a baseline recorded
    // against the original line number.
    qa::Baseline baseline;
    baseline.entries.push_back(qa::BaselineEntry{
        before[0].rule, before[0].file, before[0].context,
        before[0].ordinal, "test: known-canonical"});
    int suppressed = 0;
    const auto kept =
        qa::applyBaseline(after, baseline, suppressed);
    EXPECT_EQ(suppressed, 1);
    EXPECT_TRUE(kept.empty());
}

TEST(Baseline, EditedStatementInvalidatesSuppression)
{
    const auto before = findingsFor(
        "src/a.cpp", "int f() {\n    static int calls = 0;\n}\n");
    const auto after = findingsFor(
        "src/a.cpp", "int f() {\n    static int calls = 1;\n}\n");
    ASSERT_EQ(before.size(), 1u);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_NE(before[0].context, after[0].context);

    qa::Baseline baseline;
    baseline.entries.push_back(qa::BaselineEntry{
        before[0].rule, before[0].file, before[0].context,
        before[0].ordinal, "test: stale after edit"});
    int suppressed = 0;
    const auto kept = qa::applyBaseline(after, baseline, suppressed);
    EXPECT_EQ(suppressed, 0);
    // The real finding stays AND the unmatched entry is reported.
    EXPECT_EQ(countRule(kept, "local-static"), 1);
    EXPECT_EQ(countRule(kept, "stale-baseline"), 1);
}

TEST(Baseline, OrdinalsDisambiguateIdenticalStatements)
{
    const auto findings = findingsFor(
        "src/a.cpp", "int f() {\n    static int calls = 0;\n}\n"
                     "int g() {\n    static int calls = 0;\n}\n");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_EQ(findings[0].context, findings[1].context);
    EXPECT_EQ(findings[0].ordinal, 0);
    EXPECT_EQ(findings[1].ordinal, 1);
    EXPECT_NE(qa::fingerprintHex(findings[0]),
              qa::fingerprintHex(findings[1]));
}

TEST(Baseline, StringLiteralEditsDoNotInvalidate)
{
    // Literal contents normalize away in the context, so editing a
    // message string near a suppressed statement changes nothing.
    const auto a = findingsFor(
        "src/a.cpp",
        "int f() {\n    static int n = 0; log(\"one\");\n}\n");
    const auto b = findingsFor(
        "src/a.cpp",
        "int f() {\n    static int n = 0; log(\"two\");\n}\n");
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].context, b[0].context);
}

TEST(Baseline, LoaderRejectsMissingJustification)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/baseline.json";
    {
        std::ofstream out(path);
        out << "{ \"version\": 1, \"entries\": [ { \"rule\": \"x\", "
               "\"file\": \"f\", \"context\": \"c\", \"ordinal\": 0, "
               "\"justification\": \"TODO: justify\" } ] }";
    }
    qa::Baseline baseline;
    std::string error;
    EXPECT_FALSE(qa::loadBaseline(path, baseline, error));
    EXPECT_NE(error.find("justification"), std::string::npos);
}

TEST(Baseline, WriteThenLoadRoundTrips)
{
    const auto findings = findingsFor(
        "src/a.cpp", "int f() {\n    static int calls = 0;\n}\n");
    ASSERT_EQ(findings.size(), 1u);
    std::string text = qa::writeBaseline(findings);
    // The writer leaves TODO justifications; fill one in as an
    // author would, then the loader accepts and it suppresses.
    const std::string todo = "TODO: justify";
    const std::size_t at = text.find(todo);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, todo.size(), "reviewed: test");
    const std::string path =
        ::testing::TempDir() + "/roundtrip_baseline.json";
    {
        std::ofstream out(path);
        out << text;
    }
    qa::Baseline baseline;
    std::string error;
    ASSERT_TRUE(qa::loadBaseline(path, baseline, error)) << error;
    int suppressed = 0;
    const auto kept =
        qa::applyBaseline(findings, baseline, suppressed);
    EXPECT_EQ(suppressed, 1);
    EXPECT_TRUE(kept.empty());
}

// ---------------------------------------------------------------------
// SARIF

TEST(Sarif, StructureIsValid210)
{
    const auto findings = findingsFor(
        "src/a.cpp", "int f() {\n    static int calls = 0;\n}\n");
    ASSERT_EQ(findings.size(), 1u);
    const std::string sarif = qa::renderSarif(findings);

    std::string error;
    const auto root = qa::parseJson(sarif, error);
    ASSERT_NE(root, nullptr) << error;
    const qa::JsonValue *version = root->get("version");
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->string, "2.1.0");
    const qa::JsonValue *schema = root->get("$schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_NE(schema->string.find("sarif-2.1.0"), std::string::npos);

    const qa::JsonValue *runs = root->get("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), 1u);
    const qa::JsonValue &run = *runs->array[0];
    const qa::JsonValue *driver = run.get("tool")->get("driver");
    ASSERT_NE(driver, nullptr);
    EXPECT_EQ(driver->get("name")->string, "qedm_analyze");
    // Every registered rule appears in the driver's rule table.
    const qa::JsonValue *rules = driver->get("rules");
    ASSERT_NE(rules, nullptr);
    std::vector<std::string> rule_ids;
    for (const auto &r : rules->array)
        rule_ids.push_back(r->get("id")->string);
    for (const char *expected :
         {"rng-discipline", "rng-in-kernel", "time-seed",
          "assert-discipline",
          "stdout-discipline", "pragma-once", "naked-new",
          "dense-distance", "unordered-iteration", "local-static",
          "float-accumulate", "wall-clock", "layering", "include-cycle",
          "stale-baseline"}) {
        EXPECT_NE(std::find(rule_ids.begin(), rule_ids.end(),
                            expected),
                  rule_ids.end())
            << expected;
    }

    const qa::JsonValue *results = run.get("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->array.size(), 1u);
    const qa::JsonValue &result = *results->array[0];
    EXPECT_EQ(result.get("ruleId")->string, "local-static");
    EXPECT_EQ(result.get("level")->string, "error");
    EXPECT_FALSE(result.get("message")->get("text")->string.empty());
    const qa::JsonValue &loc = *result.get("locations")->array[0];
    const qa::JsonValue *phys = loc.get("physicalLocation");
    ASSERT_NE(phys, nullptr);
    EXPECT_EQ(phys->get("artifactLocation")->get("uri")->string,
              "src/a.cpp");
    EXPECT_EQ(phys->get("region")->get("startLine")->number, 2.0);
    EXPECT_FALSE(result.get("partialFingerprints")
                     ->get("qedmTokenContext/v1")
                     ->string.empty());
}

// ---------------------------------------------------------------------
// Determinism and the real tree

TEST(Determinism, JobsOneAndFourAreByteIdentical)
{
    qa::AnalyzeOptions opts;
    opts.root = QEDM_SOURCE_DIR;
    opts.jobs = 1;
    const qa::Report serial = qa::analyzeTree(opts);
    ASSERT_TRUE(serial.error.empty()) << serial.error;
    opts.jobs = 4;
    const qa::Report parallel = qa::analyzeTree(opts);
    ASSERT_TRUE(parallel.error.empty()) << parallel.error;

    EXPECT_EQ(qa::renderText(serial), qa::renderText(parallel));
    EXPECT_EQ(qa::renderSarif(serial.findings),
              qa::renderSarif(parallel.findings));
}

TEST(Determinism, RepoTreeIsCleanUnderTheBaseline)
{
    qa::AnalyzeOptions opts;
    opts.root = QEDM_SOURCE_DIR;
    opts.jobs = 4;
    const qa::Report report = qa::analyzeTree(opts);
    ASSERT_TRUE(report.error.empty()) << report.error;
    EXPECT_TRUE(report.findings.empty())
        << qa::renderText(report);
}

} // namespace
