/**
 * @file
 * Unit tests for qedm_analysis: the buckets-and-balls model (Appendix
 * A) and the report formatting helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/buckets_balls.hpp"
#include "analysis/report.hpp"
#include "common/error.hpp"
#include "stats/distribution.hpp"

namespace qedm::analysis {
namespace {

TEST(BucketsBalls, AnalyticalMatchesPaperExample)
{
    // Appendix A: for M = 64, uncorrelated errors, even ps = 2% gives
    // IST > 1 at N = 8192 balls.
    EXPECT_GT(analyticalIstUncorrelated(0.02, 64, 8192), 1.0);
    // And vanishing ps does not.
    EXPECT_LT(analyticalIstUncorrelated(0.005, 64, 8192), 1.0);
}

TEST(BucketsBalls, AnalyticalMonotoneInPs)
{
    double prev = 0.0;
    for (double ps : {0.01, 0.02, 0.05, 0.10, 0.20}) {
        const double ist = analyticalIstUncorrelated(ps, 64, 8192);
        EXPECT_GT(ist, prev);
        prev = ist;
    }
}

TEST(BucketsBalls, AnalyticalValidates)
{
    EXPECT_THROW(analyticalIstUncorrelated(-0.1, 64, 100), UserError);
    EXPECT_THROW(analyticalIstUncorrelated(0.5, 1, 100), UserError);
    EXPECT_THROW(analyticalIstUncorrelated(0.5, 64, 0), UserError);
}

TEST(BucketsBalls, MonteCarloAgreesWithAnalyticalWhenUncorrelated)
{
    BucketsModel model;
    model.numBuckets = 64;
    model.ps = 0.05;
    model.qcor = 0.0;
    Rng rng(3);
    const double mc = meanMonteCarloIst(model, 8192, 40, rng);
    const double an = analyticalIstUncorrelated(0.05, 64, 8192);
    EXPECT_NEAR(mc, an, 0.35 * an);
}

TEST(BucketsBalls, CorrelationDepressesIst)
{
    // Fig. 13: at fixed ps, stronger correlation means lower IST.
    BucketsModel model;
    model.numBuckets = 64;
    model.ps = 0.05;
    model.numFavored = 6;
    Rng rng(5);
    model.qcor = 0.0;
    const double ist0 = meanMonteCarloIst(model, 8192, 30, rng);
    model.qcor = 0.10;
    const double ist10 = meanMonteCarloIst(model, 8192, 30, rng);
    model.qcor = 0.50;
    const double ist50 = meanMonteCarloIst(model, 8192, 30, rng);
    EXPECT_GT(ist0, ist10);
    EXPECT_GT(ist10, ist50);
}

TEST(BucketsBalls, FrontierShiftsRightWithCorrelation)
{
    // Appendix A.3: frontier ~1.8% uncorrelated, ~3.6% at Qcor = 10%,
    // ~8% at Qcor = 50%. Check ordering and rough bands.
    BucketsModel model;
    model.numBuckets = 64;
    model.numFavored = 6;
    Rng rng(7);
    model.qcor = 0.0;
    const double f0 = pstFrontier(model, 8192, 12, rng);
    model.qcor = 0.10;
    const double f10 = pstFrontier(model, 8192, 12, rng);
    model.qcor = 0.50;
    const double f50 = pstFrontier(model, 8192, 12, rng);
    EXPECT_LT(f0, f10);
    EXPECT_LT(f10, f50);
    EXPECT_NEAR(f0, 0.018, 0.012);
    EXPECT_NEAR(f10, 0.036, 0.02);
    EXPECT_NEAR(f50, 0.08, 0.04);
}

TEST(BucketsBalls, CurveIsSampledAcrossRange)
{
    BucketsModel model;
    Rng rng(9);
    const auto curve =
        istVsPstCurve(model, 0.01, 0.2, 5, 2048, 5, rng);
    ASSERT_EQ(curve.size(), 5u);
    EXPECT_DOUBLE_EQ(curve.front().ps, 0.01);
    EXPECT_DOUBLE_EQ(curve.back().ps, 0.2);
    EXPECT_GT(curve.back().ist, curve.front().ist);
}

TEST(BucketsBalls, ModelValidation)
{
    BucketsModel model;
    model.numFavored = 64;
    Rng rng(1);
    EXPECT_THROW(monteCarloIst(model, 100, rng), UserError);
    model.numFavored = 6;
    model.qcor = 1.5;
    EXPECT_THROW(monteCarloIst(model, 100, rng), UserError);
    model.qcor = 0.5;
    EXPECT_THROW(monteCarloIst(model, 0, rng), UserError);
}

TEST(BucketsBalls, AllErrorsIntoFavoredWhenSpanZero)
{
    // M - 1 == k: every erroneous ball must land in a purple bucket.
    BucketsModel model;
    model.numBuckets = 4;
    model.numFavored = 3;
    model.ps = 0.5;
    model.qcor = 0.0;
    Rng rng(11);
    EXPECT_NO_THROW(monteCarloIst(model, 1000, rng));
}

TEST(Report, TableAlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
    EXPECT_THROW(t.addRow({"only-one"}), UserError);
    EXPECT_THROW(Table({}), UserError);
}

TEST(Report, FmtPrecision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt(0.5), "0.500");
}

TEST(Report, BarScalesAndClamps)
{
    EXPECT_EQ(bar(1.0, 1.0, 4), "####");
    EXPECT_EQ(bar(0.0, 1.0, 4), "....");
    EXPECT_EQ(bar(0.5, 1.0, 4), "##..");
    EXPECT_EQ(bar(7.0, 1.0, 4), "####"); // clamped
    EXPECT_THROW(bar(1.0, 0.0, 4), UserError);
}

TEST(Report, HeatmapRendersSquareMatrix)
{
    const std::vector<std::vector<double>> m{{0.0, 1.0}, {1.0, 0.0}};
    const std::string s = heatmap(m, {"A", "B"});
    EXPECT_NE(s.find('@'), std::string::npos); // dark = small
    EXPECT_THROW(heatmap(m, {"A"}), UserError);
    EXPECT_THROW(heatmap({{0.0, 1.0}}, {"A"}), UserError);
}

TEST(Report, DistributionReportMarksCorrect)
{
    const auto d = stats::Distribution::fromProbabilities(
        {0.1, 0.6, 0.2, 0.1});
    const std::string s = distributionReport(d, 1, 4);
    EXPECT_NE(s.find("<= correct"), std::string::npos);
    EXPECT_NE(s.find("PST = 0.6"), std::string::npos);
    EXPECT_NE(s.find("IST = 3.0"), std::string::npos);
}

} // namespace
} // namespace qedm::analysis
