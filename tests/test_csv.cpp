/**
 * @file
 * Unit tests for the CSV export helper.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "analysis/csv.hpp"
#include "common/error.hpp"

namespace qedm::analysis {
namespace {

TEST(Csv, BasicDocument)
{
    CsvWriter csv({"a", "b"});
    csv.addRow({"1", "2"});
    csv.addRow({"3", "4"});
    EXPECT_EQ(csv.toString(), "a,b\n1,2\n3,4\n");
    EXPECT_EQ(csv.rowCount(), 2u);
}

TEST(Csv, EscapesSpecialCharacters)
{
    CsvWriter csv({"name", "note"});
    csv.addRow({"comma,cell", "quote\"cell"});
    csv.addRow({"newline\ncell", "plain"});
    const std::string doc = csv.toString();
    EXPECT_NE(doc.find("\"comma,cell\""), std::string::npos);
    EXPECT_NE(doc.find("\"quote\"\"cell\""), std::string::npos);
    EXPECT_NE(doc.find("\"newline\ncell\""), std::string::npos);
}

TEST(Csv, Validation)
{
    EXPECT_THROW(CsvWriter({}), UserError);
    CsvWriter csv({"x"});
    EXPECT_THROW(csv.addRow({"1", "2"}), UserError);
}

TEST(Csv, WriteFileRoundTrip)
{
    CsvWriter csv({"k", "v"});
    csv.addRow({"alpha", "1"});
    const std::string path = "/tmp/qedm_csv_test.csv";
    csv.writeFile(path);
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, csv.toString());
    std::remove(path.c_str());
    EXPECT_THROW(csv.writeFile("/nonexistent-dir/x.csv"), UserError);
}

} // namespace
} // namespace qedm::analysis
