/**
 * @file
 * Unit tests for device serialization, the IST bootstrap interval,
 * and the crosstalk-exposure metric.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "core/ensemble.hpp"
#include "hw/serialization.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/crosstalk.hpp"

namespace qedm {
namespace {

TEST(DeviceSerialization, ExactRoundTrip)
{
    const hw::Device original = hw::Device::melbourne(7);
    const std::string text = hw::serializeDevice(original);
    const hw::Device parsed = hw::parseDevice(text);

    EXPECT_EQ(parsed.name(), original.name());
    EXPECT_EQ(parsed.numQubits(), original.numQubits());
    EXPECT_EQ(parsed.topology().numEdges(),
              original.topology().numEdges());
    for (int q = 0; q < 14; ++q) {
        EXPECT_EQ(parsed.calibration().qubit(q).error1q,
                  original.calibration().qubit(q).error1q);
        EXPECT_EQ(parsed.calibration().qubit(q).readoutP10,
                  original.calibration().qubit(q).readoutP10);
        EXPECT_EQ(parsed.noise().overRotation1q(q),
                  original.noise().overRotation1q(q));
    }
    for (std::size_t e = 0; e < original.topology().numEdges(); ++e) {
        EXPECT_EQ(parsed.calibration().edge(e).cxError,
                  original.calibration().edge(e).cxError);
        EXPECT_EQ(parsed.noise().overRotation(e),
                  original.noise().overRotation(e));
        EXPECT_EQ(parsed.noise().controlPhase(e),
                  original.noise().controlPhase(e));
        ASSERT_EQ(parsed.noise().crosstalk(e).size(),
                  original.noise().crosstalk(e).size());
    }
    ASSERT_EQ(parsed.noise().correlatedReadout().size(),
              original.noise().correlatedReadout().size());
    EXPECT_EQ(parsed.noise().spec().stochasticScale,
              original.noise().spec().stochasticScale);
}

TEST(DeviceSerialization, RoundTripPreservesSimulation)
{
    // The strongest check: a parsed device must produce bit-identical
    // execution results.
    const hw::Device original = hw::Device::melbourne(5);
    const hw::Device parsed =
        hw::parseDevice(hw::serializeDevice(original));
    const auto bench = benchmarks::greycode();
    const core::EnsembleBuilder b1(original), b2(parsed);
    const auto p1 = b1.candidates(bench.circuit).front();
    const auto p2 = b2.candidates(bench.circuit).front();
    EXPECT_EQ(p1.initialMap, p2.initialMap);
    const sim::Executor e1(original), e2(parsed);
    Rng r1(3), r2(3);
    EXPECT_EQ(e1.run(p1.physical, 1000, r1).entries(),
              e2.run(p2.physical, 1000, r2).entries());
}

TEST(DeviceSerialization, FileRoundTrip)
{
    const hw::Device original = hw::Device::melbourne(9);
    const std::string path = "/tmp/qedm_device_test.qdev";
    hw::saveDevice(original, path);
    const hw::Device loaded = hw::loadDevice(path);
    EXPECT_EQ(hw::serializeDevice(loaded),
              hw::serializeDevice(original));
    std::remove(path.c_str());
    EXPECT_THROW(hw::loadDevice("/nonexistent/x.qdev"), UserError);
}

TEST(DeviceSerialization, RejectsMalformedInput)
{
    EXPECT_THROW(hw::parseDevice(""), UserError);
    EXPECT_THROW(hw::parseDevice("not-a-device\n"), UserError);
    EXPECT_THROW(hw::parseDevice("qedm-device v1\nqubits 2\n"),
                 UserError); // missing records
    const std::string good =
        hw::serializeDevice(hw::Device::melbourne(1));
    EXPECT_THROW(hw::parseDevice(good + "bogus 1 2\n"), UserError);
}

TEST(IstBootstrap, TightForLargeSamplesAndCoversEstimate)
{
    stats::Counts counts(2);
    counts.add(0b11, 5000); // correct
    counts.add(0b01, 3000);
    counts.add(0b10, 1500);
    counts.add(0b00, 500);
    Rng rng(3);
    const auto ci =
        stats::istConfidenceInterval(counts, 0b11, rng, 200, 0.95);
    EXPECT_NEAR(ci.pointEstimate, 5000.0 / 3000.0, 1e-9);
    EXPECT_LE(ci.lower, ci.pointEstimate);
    EXPECT_GE(ci.upper, ci.pointEstimate);
    // ~10k shots: the interval should be within ~10% of the point.
    EXPECT_GT(ci.lower, 0.9 * ci.pointEstimate);
    EXPECT_LT(ci.upper, 1.1 * ci.pointEstimate);
}

TEST(IstBootstrap, WideForSmallSamples)
{
    stats::Counts big(2), small(2);
    big.add(0b11, 5000);
    big.add(0b01, 4000);
    small.add(0b11, 50);
    small.add(0b01, 40);
    Rng rng(5);
    const auto wide =
        stats::istConfidenceInterval(small, 0b11, rng, 200);
    const auto tight =
        stats::istConfidenceInterval(big, 0b11, rng, 200);
    EXPECT_GT(wide.upper - wide.lower, tight.upper - tight.lower);
}

TEST(IstBootstrap, Validates)
{
    stats::Counts counts(1);
    Rng rng(1);
    EXPECT_THROW(stats::istConfidenceInterval(counts, 0, rng),
                 UserError);
    counts.add(0, 10);
    EXPECT_THROW(stats::istConfidenceInterval(counts, 0, rng, 5),
                 UserError);
    EXPECT_THROW(
        stats::istConfidenceInterval(counts, 0, rng, 100, 1.5),
        UserError);
}

TEST(CrosstalkExposure, CountsOnlyActiveSpectators)
{
    const hw::Device device = hw::Device::melbourne(7);
    // Single CX on edge (2, 3): spectators exist but none active.
    circuit::Circuit lonely(14, 1);
    lonely.cx(2, 3).measure(2, 0);
    const auto none = transpile::crosstalkExposure(lonely, device);
    EXPECT_EQ(none.spectatorEvents, 0);
    EXPECT_EQ(none.totalKickRad, 0.0);

    // Same CX with a neighbor in play: exposure appears (assuming the
    // sampled model has terms on that edge, which melbourne(7) does).
    circuit::Circuit busy(14, 1);
    busy.h(1).cx(2, 3).measure(2, 0);
    const auto some = transpile::crosstalkExposure(busy, device);
    EXPECT_GE(some.spectatorEvents, 0);
    EXPECT_GE(some.totalKickRad, none.totalKickRad);
}

TEST(CrosstalkExposure, GrowsWithCircuitSize)
{
    const hw::Device device = hw::Device::melbourne(7);
    const core::EnsembleBuilder builder(device);
    const auto small =
        builder.candidates(benchmarks::greycode().circuit).front();
    const auto big =
        builder.candidates(benchmarks::decoder24().circuit).front();
    const auto e_small =
        transpile::crosstalkExposure(small.physical, device);
    const auto e_big =
        transpile::crosstalkExposure(big.physical, device);
    EXPECT_GT(e_big.spectatorEvents, e_small.spectatorEvents);
}

} // namespace
} // namespace qedm
