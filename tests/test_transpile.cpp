/**
 * @file
 * Unit tests for qedm_transpile: ESP computation, interaction graphs,
 * VF2 embedding, variation-aware placement, and the SWAP router
 * (including semantic preservation of routed circuits).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/esp.hpp"
#include "transpile/interaction_graph.hpp"
#include "transpile/placer.hpp"
#include "transpile/router.hpp"
#include "transpile/transpiler.hpp"
#include "transpile/vf2.hpp"

namespace qedm::transpile {
namespace {

using circuit::Circuit;

TEST(Esp, MatchesHandComputedProduct)
{
    const hw::Device device = hw::Device::melbourne(7);
    const auto &cal = device.calibration();
    Circuit c(14, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    const int e01 = device.topology().edgeIndex(0, 1);
    const double expected =
        (1.0 - cal.qubit(0).error1q) *
        (1.0 - cal.edge(std::size_t(e01)).cxError) *
        (1.0 - cal.qubit(0).readoutError()) *
        (1.0 - cal.qubit(1).readoutError());
    EXPECT_NEAR(esp(c, device), expected, 1e-12);
}

TEST(Esp, SwapCountsAsThreeCx)
{
    const hw::Device device = hw::Device::melbourne(7);
    Circuit with_swap(14, 1);
    with_swap.swap(0, 1).measure(0, 0);
    Circuit with_cx(14, 1);
    with_cx.cx(0, 1).cx(1, 0).cx(0, 1).measure(0, 0);
    EXPECT_NEAR(esp(with_swap, device), esp(with_cx, device), 1e-12);
}

TEST(Esp, IdealDeviceGivesOne)
{
    const hw::Device device = hw::Device::idealMelbourne();
    Circuit c(14, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    EXPECT_DOUBLE_EQ(esp(c, device), 1.0);
    EXPECT_DOUBLE_EQ(espCost(c, device), 0.0);
}

TEST(Esp, RejectsUncoupledTwoQubitGate)
{
    const hw::Device device = hw::Device::melbourne(7);
    Circuit c(14, 1);
    c.cx(0, 7).measure(0, 0);
    EXPECT_THROW(esp(c, device), UserError);
}

TEST(InteractionGraph, CollectsWeightedPairs)
{
    Circuit c(4, 0);
    c.cx(0, 1).cx(1, 0).cx(2, 3);
    const InteractionGraph ig = interactionGraph(c);
    EXPECT_EQ(ig.numQubits, 4);
    ASSERT_EQ(ig.edges.size(), 2u);
    EXPECT_EQ(ig.edges[0], (std::pair{0, 1}));
    EXPECT_EQ(ig.weights[0], 2);
    EXPECT_EQ(ig.degree(1), 1);
    EXPECT_TRUE(ig.isolatedQubits().empty());
}

TEST(InteractionGraph, IsolatedQubits)
{
    Circuit c(4, 0);
    c.h(0).cx(1, 2);
    const InteractionGraph ig = interactionGraph(c);
    const auto isolated = ig.isolatedQubits();
    EXPECT_EQ(isolated, (std::vector{0, 3}));
}

TEST(InteractionGraph, DecomposesSwapFirst)
{
    Circuit c(3, 0);
    c.swap(0, 2);
    const InteractionGraph ig = interactionGraph(c);
    ASSERT_EQ(ig.edges.size(), 1u);
    EXPECT_EQ(ig.weights[0], 3);
}

TEST(Vf2, PathIntoPath)
{
    // 3-path into 5-path: 3 positions x 2 orientations = 6.
    const auto maps = vf2AllEmbeddings(hw::Topology::linear(3),
                                       hw::Topology::linear(5));
    EXPECT_EQ(maps.size(), 6u);
    for (const auto &m : maps) {
        std::set<int> distinct(m.begin(), m.end());
        EXPECT_EQ(distinct.size(), 3u);
    }
}

TEST(Vf2, TriangleCannotEmbedInBipartiteLadder)
{
    const hw::Topology triangle(3, {{0, 1}, {1, 2}, {0, 2}});
    EXPECT_FALSE(vf2Embeds(triangle, hw::Topology::melbourne()));
}

TEST(Vf2, StarFourCannotEmbedInMelbourne)
{
    // Max degree on the melbourne ladder is 3.
    const hw::Topology star4(
        5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
    EXPECT_FALSE(vf2Embeds(star4, hw::Topology::melbourne()));
}

TEST(Vf2, StarThreeEmbedsInMelbourne)
{
    const hw::Topology star3(4, {{0, 1}, {0, 2}, {0, 3}});
    const auto maps =
        vf2AllEmbeddings(star3, hw::Topology::melbourne());
    EXPECT_FALSE(maps.empty());
    const hw::Topology melbourne = hw::Topology::melbourne();
    for (const auto &m : maps) {
        for (int leaf = 1; leaf <= 3; ++leaf)
            EXPECT_TRUE(melbourne.adjacent(m[0], m[leaf]));
    }
}

TEST(Vf2, LimitIsHonored)
{
    const auto maps = vf2AllEmbeddings(hw::Topology::linear(2),
                                       hw::Topology::melbourne(), 5);
    EXPECT_EQ(maps.size(), 5u);
}

TEST(Vf2, EveryEmbeddingMapsEdgesToEdges)
{
    const hw::Topology pattern(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    const hw::Topology target = hw::Topology::melbourne();
    const auto maps = vf2AllEmbeddings(pattern, target);
    EXPECT_FALSE(maps.empty()); // 4-cycles exist in the ladder
    for (const auto &m : maps) {
        EXPECT_TRUE(target.adjacent(m[0], m[1]));
        EXPECT_TRUE(target.adjacent(m[1], m[2]));
        EXPECT_TRUE(target.adjacent(m[2], m[3]));
        EXPECT_TRUE(target.adjacent(m[3], m[0]));
    }
}

TEST(Vf2, PatternLargerThanTargetRejected)
{
    EXPECT_THROW(vf2AllEmbeddings(hw::Topology::linear(5),
                                  hw::Topology::linear(3)),
                 UserError);
    EXPECT_FALSE(vf2Embeds(hw::Topology::linear(5),
                           hw::Topology::linear(3)));
}

TEST(Placer, RankedEmbeddingsSortedByEsp)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Placer placer(device);
    Circuit c(3, 3);
    c.cx(0, 1).cx(1, 2).measureAll();
    const auto ranked = placer.rankedEmbeddings(c);
    ASSERT_GT(ranked.size(), 1u);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].esp, ranked[i].esp);
    // Every placement is injective and in range.
    for (const auto &sp : ranked) {
        std::set<int> distinct(sp.map.begin(), sp.map.end());
        EXPECT_EQ(distinct.size(), sp.map.size());
        for (int p : sp.map) {
            EXPECT_GE(p, 0);
            EXPECT_LT(p, 14);
        }
    }
}

TEST(Placer, PlaceReturnsBestEmbeddingWhenAvailable)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Placer placer(device);
    Circuit c(3, 3);
    c.cx(0, 1).cx(1, 2).measureAll();
    const auto ranked = placer.rankedEmbeddings(c);
    const auto best = placer.place(c);
    EXPECT_EQ(best, ranked.front().map);
}

TEST(Placer, GreedyFallbackForNonEmbeddablePattern)
{
    // Star-4 interaction graph cannot embed (max degree 3), so place()
    // must fall back to greedy and the router will insert SWAPs.
    const hw::Device device = hw::Device::melbourne(7);
    const Placer placer(device);
    Circuit c(5, 5);
    c.cx(0, 4).cx(1, 4).cx(2, 4).cx(3, 4).measureAll();
    EXPECT_TRUE(placer.rankedEmbeddings(c).empty());
    const auto map = placer.place(c);
    std::set<int> distinct(map.begin(), map.end());
    EXPECT_EQ(distinct.size(), 5u);
}

TEST(Placer, IsolatedQubitsGetBestReadout)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Placer placer(device);
    Circuit c(3, 3);
    c.cx(0, 1).measureAll(); // qubit 2 isolated
    const auto map = placer.place(c);
    // Isolated qubit must not land on the pathological readout qubits.
    EXPECT_NE(map[2], 11);
    EXPECT_NE(map[2], 12);
}

TEST(Router, AdjacentGateNeedsNoSwap)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Router router(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const auto result = router.route(c, {0, 1});
    EXPECT_EQ(result.swapCount, 0);
    EXPECT_TRUE(result.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
}

TEST(Router, DistantGateInsertsSwaps)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Router router(device, RouteCost::HopCount);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    // Place on 0 and 3: distance 3 -> 2 swaps.
    const auto result = router.route(c, {0, 3});
    EXPECT_EQ(result.swapCount, 2);
    EXPECT_TRUE(result.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
}

TEST(Router, FinalMapTracksSwaps)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Router router(device, RouteCost::HopCount);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const auto result = router.route(c, {0, 3});
    // Logical 0 moved next to physical 3; logical 1 still on 3.
    EXPECT_EQ(result.finalMap[1], 3);
    EXPECT_TRUE(
        device.topology().adjacent(result.finalMap[0],
                                   result.finalMap[1]));
}

TEST(Router, ValidatesInitialMap)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Router router(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    EXPECT_THROW(router.route(c, {0}), UserError);
    EXPECT_THROW(router.route(c, {0, 0}), UserError);
    EXPECT_THROW(router.route(c, {0, 99}), UserError);
}

TEST(Router, RoutedCircuitPreservesSemantics)
{
    // Route a GHZ circuit with a deliberately bad placement and check
    // the ideal output distribution is unchanged.
    const hw::Device device = hw::Device::idealMelbourne();
    const Router router(device);
    Circuit c(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();
    const auto routed = router.route(c, {0, 5, 9});
    EXPECT_GT(routed.swapCount, 0);
    const auto logical_dist = sim::idealDistribution(c);
    const auto routed_dist = sim::idealDistribution(routed.physical);
    for (Outcome o = 0; o < 8; ++o)
        EXPECT_NEAR(routed_dist.prob(o), logical_dist.prob(o), 1e-9)
            << "outcome " << o;
}

TEST(Router, ReliabilityCostAvoidsBadLinks)
{
    // Make one link on the hop-shortest path catastntastrophically bad
    // and check the reliability router detours around it.
    hw::Device device = hw::Device::melbourne(7);
    hw::Calibration cal = device.calibration();
    const int bad = device.topology().edgeIndex(1, 2);
    cal.edge(std::size_t(bad)).cxError = 0.40;
    device = device.withCalibration(cal);

    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const Router hop_router(device, RouteCost::HopCount);
    const Router rel_router(device, RouteCost::Reliability);
    const auto hop = hop_router.route(c, {0, 3});
    const auto rel = rel_router.route(c, {0, 3});
    // The reliability route must have higher ESP despite possibly
    // using more SWAPs.
    EXPECT_GE(esp(rel.physical, device), esp(hop.physical, device));
}

TEST(Transpiler, CompileProducesValidProgram)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Transpiler compiler(device);
    const auto bench = benchmarks::bv6();
    const auto program = compiler.compile(bench.circuit);
    EXPECT_GT(program.esp, 0.0);
    EXPECT_LE(program.esp, 1.0);
    EXPECT_TRUE(program.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
    EXPECT_EQ(program.physical.numClbits(), bench.outputWidth);
    // BV-6 (4-leaf star) needs at least one SWAP on a degree-3 chip.
    EXPECT_GE(program.swapCount, 1);
}

TEST(Transpiler, CompiledBv6SemanticsPreserved)
{
    const auto bench = benchmarks::bv6();
    const hw::Device device = hw::Device::idealMelbourne();
    const Transpiler compiler(device);
    const auto program = compiler.compile(bench.circuit);
    const auto dist = sim::idealDistribution(program.physical);
    EXPECT_NEAR(dist.prob(bench.expected), 1.0, 1e-9);
}

TEST(Transpiler, QaoaNeedsNoSwaps)
{
    // The paper: path-graph QAOA maps SWAP-free onto the device.
    const hw::Device device = hw::Device::melbourne(7);
    const Transpiler compiler(device);
    for (int n : {5, 6, 7}) {
        const auto bench = benchmarks::qaoaMaxcutPath(n);
        const auto program = compiler.compile(bench.circuit);
        EXPECT_EQ(program.swapCount, 0) << "qaoa-" << n;
    }
}

TEST(Transpiler, CompileWithPlacementRespectsMap)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Transpiler compiler(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const auto program = compiler.compileWithPlacement(c, {6, 8});
    EXPECT_EQ(program.initialMap, (std::vector{6, 8}));
    EXPECT_EQ(program.swapCount, 0);
    const auto used = program.usedQubits();
    EXPECT_EQ(used, (std::vector{6, 8}));
}

// Brute-force optimality check: for a tiny 2-qubit program the
// placer's embedding must achieve the maximum ESP over all pairs.
TEST(Placer, BruteForceOptimalityTwoQubits)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Transpiler compiler(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();

    double best = 0.0;
    for (int a = 0; a < 14; ++a) {
        for (int b = 0; b < 14; ++b) {
            if (a == b || !device.topology().adjacent(a, b))
                continue;
            best = std::max(
                best,
                compiler.compileWithPlacement(c, {a, b}).esp);
        }
    }
    EXPECT_NEAR(compiler.compile(c).esp, best, 1e-12);
}

} // namespace
} // namespace qedm::transpile
