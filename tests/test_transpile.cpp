/**
 * @file
 * Unit tests for qedm_transpile: ESP computation, interaction graphs,
 * VF2 embedding (including pruned-vs-reference equivalence), the
 * bounded top-K placement search, variation-aware placement, and the
 * SWAP router (including semantic preservation of routed circuits).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <set>
#include <utility>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/distances.hpp"
#include "transpile/esp.hpp"
#include "transpile/interaction_graph.hpp"
#include "transpile/placement_search.hpp"
#include "transpile/placer.hpp"
#include "transpile/router.hpp"
#include "transpile/transpiler.hpp"
#include "transpile/vf2.hpp"

namespace qedm::transpile {
namespace {

using circuit::Circuit;

TEST(Esp, MatchesHandComputedProduct)
{
    const hw::Device device = hw::Device::melbourne(7);
    const auto &cal = device.calibration();
    Circuit c(14, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    const int e01 = device.topology().edgeIndex(0, 1);
    const double expected =
        (1.0 - cal.qubit(0).error1q) *
        (1.0 - cal.edge(std::size_t(e01)).cxError) *
        (1.0 - cal.qubit(0).readoutError()) *
        (1.0 - cal.qubit(1).readoutError());
    EXPECT_NEAR(esp(c, device), expected, 1e-12);
}

TEST(Esp, SwapCountsAsThreeCx)
{
    const hw::Device device = hw::Device::melbourne(7);
    Circuit with_swap(14, 1);
    with_swap.swap(0, 1).measure(0, 0);
    Circuit with_cx(14, 1);
    with_cx.cx(0, 1).cx(1, 0).cx(0, 1).measure(0, 0);
    EXPECT_NEAR(esp(with_swap, device), esp(with_cx, device), 1e-12);
}

TEST(Esp, IdealDeviceGivesOne)
{
    const hw::Device device = hw::Device::idealMelbourne();
    Circuit c(14, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    EXPECT_DOUBLE_EQ(esp(c, device), 1.0);
    EXPECT_DOUBLE_EQ(espCost(c, device), 0.0);
}

TEST(Esp, RejectsUncoupledTwoQubitGate)
{
    const hw::Device device = hw::Device::melbourne(7);
    Circuit c(14, 1);
    c.cx(0, 7).measure(0, 0);
    EXPECT_THROW(esp(c, device), UserError);
}

TEST(InteractionGraph, CollectsWeightedPairs)
{
    Circuit c(4, 0);
    c.cx(0, 1).cx(1, 0).cx(2, 3);
    const InteractionGraph ig = interactionGraph(c);
    EXPECT_EQ(ig.numQubits, 4);
    ASSERT_EQ(ig.edges.size(), 2u);
    EXPECT_EQ(ig.edges[0], (std::pair{0, 1}));
    EXPECT_EQ(ig.weights[0], 2);
    EXPECT_EQ(ig.degree(1), 1);
    EXPECT_TRUE(ig.isolatedQubits().empty());
}

TEST(InteractionGraph, IsolatedQubits)
{
    Circuit c(4, 0);
    c.h(0).cx(1, 2);
    const InteractionGraph ig = interactionGraph(c);
    const auto isolated = ig.isolatedQubits();
    EXPECT_EQ(isolated, (std::vector{0, 3}));
}

TEST(InteractionGraph, DecomposesSwapFirst)
{
    Circuit c(3, 0);
    c.swap(0, 2);
    const InteractionGraph ig = interactionGraph(c);
    ASSERT_EQ(ig.edges.size(), 1u);
    EXPECT_EQ(ig.weights[0], 3);
}

TEST(Vf2, PathIntoPath)
{
    // 3-path into 5-path: 3 positions x 2 orientations = 6.
    const auto maps = vf2AllEmbeddings(hw::Topology::linear(3),
                                       hw::Topology::linear(5));
    EXPECT_EQ(maps.size(), 6u);
    for (const auto &m : maps) {
        std::set<int> distinct(m.begin(), m.end());
        EXPECT_EQ(distinct.size(), 3u);
    }
}

TEST(Vf2, TriangleCannotEmbedInBipartiteLadder)
{
    const hw::Topology triangle(3, {{0, 1}, {1, 2}, {0, 2}});
    EXPECT_FALSE(vf2Embeds(triangle, hw::Topology::melbourne()));
}

TEST(Vf2, StarFourCannotEmbedInMelbourne)
{
    // Max degree on the melbourne ladder is 3.
    const hw::Topology star4(
        5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
    EXPECT_FALSE(vf2Embeds(star4, hw::Topology::melbourne()));
}

TEST(Vf2, StarThreeEmbedsInMelbourne)
{
    const hw::Topology star3(4, {{0, 1}, {0, 2}, {0, 3}});
    const auto maps =
        vf2AllEmbeddings(star3, hw::Topology::melbourne());
    EXPECT_FALSE(maps.empty());
    const hw::Topology melbourne = hw::Topology::melbourne();
    for (const auto &m : maps) {
        for (int leaf = 1; leaf <= 3; ++leaf)
            EXPECT_TRUE(melbourne.adjacent(m[0], m[leaf]));
    }
}

TEST(Vf2, LimitIsHonored)
{
    const auto maps = vf2AllEmbeddings(hw::Topology::linear(2),
                                       hw::Topology::melbourne(), 5);
    EXPECT_EQ(maps.size(), 5u);
}

TEST(Vf2, EveryEmbeddingMapsEdgesToEdges)
{
    const hw::Topology pattern(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    const hw::Topology target = hw::Topology::melbourne();
    const auto maps = vf2AllEmbeddings(pattern, target);
    EXPECT_FALSE(maps.empty()); // 4-cycles exist in the ladder
    for (const auto &m : maps) {
        EXPECT_TRUE(target.adjacent(m[0], m[1]));
        EXPECT_TRUE(target.adjacent(m[1], m[2]));
        EXPECT_TRUE(target.adjacent(m[2], m[3]));
        EXPECT_TRUE(target.adjacent(m[3], m[0]));
    }
}

TEST(Vf2, PatternLargerThanTargetRejected)
{
    EXPECT_THROW(vf2AllEmbeddings(hw::Topology::linear(5),
                                  hw::Topology::linear(3)),
                 UserError);
    EXPECT_FALSE(vf2Embeds(hw::Topology::linear(5),
                           hw::Topology::linear(3)));
}

TEST(Placer, RankedEmbeddingsSortedByEsp)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Placer placer(device);
    Circuit c(3, 3);
    c.cx(0, 1).cx(1, 2).measureAll();
    const auto ranked = placer.rankedEmbeddings(c);
    ASSERT_GT(ranked.size(), 1u);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].esp, ranked[i].esp);
    // Every placement is injective and in range.
    for (const auto &sp : ranked) {
        std::set<int> distinct(sp.map.begin(), sp.map.end());
        EXPECT_EQ(distinct.size(), sp.map.size());
        for (int p : sp.map) {
            EXPECT_GE(p, 0);
            EXPECT_LT(p, 14);
        }
    }
}

TEST(Placer, PlaceReturnsBestEmbeddingWhenAvailable)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Placer placer(device);
    Circuit c(3, 3);
    c.cx(0, 1).cx(1, 2).measureAll();
    const auto ranked = placer.rankedEmbeddings(c);
    const auto best = placer.place(c);
    EXPECT_EQ(best, ranked.front().map);
}

TEST(Placer, GreedyFallbackForNonEmbeddablePattern)
{
    // Star-4 interaction graph cannot embed (max degree 3), so place()
    // must fall back to greedy and the router will insert SWAPs.
    const hw::Device device = hw::Device::melbourne(7);
    const Placer placer(device);
    Circuit c(5, 5);
    c.cx(0, 4).cx(1, 4).cx(2, 4).cx(3, 4).measureAll();
    EXPECT_TRUE(placer.rankedEmbeddings(c).empty());
    const auto map = placer.place(c);
    std::set<int> distinct(map.begin(), map.end());
    EXPECT_EQ(distinct.size(), 5u);
}

TEST(Placer, IsolatedQubitsGetBestReadout)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Placer placer(device);
    Circuit c(3, 3);
    c.cx(0, 1).measureAll(); // qubit 2 isolated
    const auto map = placer.place(c);
    // Isolated qubit must not land on the pathological readout qubits.
    EXPECT_NE(map[2], 11);
    EXPECT_NE(map[2], 12);
}

TEST(Router, AdjacentGateNeedsNoSwap)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Router router(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const auto result = router.route(c, {0, 1});
    EXPECT_EQ(result.swapCount, 0);
    EXPECT_TRUE(result.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
}

TEST(Router, DistantGateInsertsSwaps)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Router router(device, RouteCost::HopCount);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    // Place on 0 and 3: distance 3 -> 2 swaps.
    const auto result = router.route(c, {0, 3});
    EXPECT_EQ(result.swapCount, 2);
    EXPECT_TRUE(result.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
}

TEST(Router, FinalMapTracksSwaps)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Router router(device, RouteCost::HopCount);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const auto result = router.route(c, {0, 3});
    // Logical 0 moved next to physical 3; logical 1 still on 3.
    EXPECT_EQ(result.finalMap[1], 3);
    EXPECT_TRUE(
        device.topology().adjacent(result.finalMap[0],
                                   result.finalMap[1]));
}

TEST(Router, ValidatesInitialMap)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Router router(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    EXPECT_THROW(router.route(c, {0}), UserError);
    EXPECT_THROW(router.route(c, {0, 0}), UserError);
    EXPECT_THROW(router.route(c, {0, 99}), UserError);
}

TEST(Router, RoutedCircuitPreservesSemantics)
{
    // Route a GHZ circuit with a deliberately bad placement and check
    // the ideal output distribution is unchanged.
    const hw::Device device = hw::Device::idealMelbourne();
    const Router router(device);
    Circuit c(3, 3);
    c.h(0).cx(0, 1).cx(1, 2).measureAll();
    const auto routed = router.route(c, {0, 5, 9});
    EXPECT_GT(routed.swapCount, 0);
    const auto logical_dist = sim::idealDistribution(c);
    const auto routed_dist = sim::idealDistribution(routed.physical);
    for (Outcome o = 0; o < 8; ++o)
        EXPECT_NEAR(routed_dist.prob(o), logical_dist.prob(o), 1e-9)
            << "outcome " << o;
}

TEST(Router, ReliabilityCostAvoidsBadLinks)
{
    // Make one link on the hop-shortest path catastntastrophically bad
    // and check the reliability router detours around it.
    hw::Device device = hw::Device::melbourne(7);
    hw::Calibration cal = device.calibration();
    const int bad = device.topology().edgeIndex(1, 2);
    cal.edge(std::size_t(bad)).cxError = 0.40;
    device = device.withCalibration(cal);

    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const Router hop_router(device, RouteCost::HopCount);
    const Router rel_router(device, RouteCost::Reliability);
    const auto hop = hop_router.route(c, {0, 3});
    const auto rel = rel_router.route(c, {0, 3});
    // The reliability route must have higher ESP despite possibly
    // using more SWAPs.
    EXPECT_GE(esp(rel.physical, device), esp(hop.physical, device));
}

TEST(Transpiler, CompileProducesValidProgram)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Transpiler compiler(device);
    const auto bench = benchmarks::bv6();
    const auto program = compiler.compile(bench.circuit);
    EXPECT_GT(program.esp, 0.0);
    EXPECT_LE(program.esp, 1.0);
    EXPECT_TRUE(program.physical.respectsCoupling(
        [&](int a, int b) { return device.topology().adjacent(a, b); }));
    EXPECT_EQ(program.physical.numClbits(), bench.outputWidth);
    // BV-6 (4-leaf star) needs at least one SWAP on a degree-3 chip.
    EXPECT_GE(program.swapCount, 1);
}

TEST(Transpiler, CompiledBv6SemanticsPreserved)
{
    const auto bench = benchmarks::bv6();
    const hw::Device device = hw::Device::idealMelbourne();
    const Transpiler compiler(device);
    const auto program = compiler.compile(bench.circuit);
    const auto dist = sim::idealDistribution(program.physical);
    EXPECT_NEAR(dist.prob(bench.expected), 1.0, 1e-9);
}

TEST(Transpiler, QaoaNeedsNoSwaps)
{
    // The paper: path-graph QAOA maps SWAP-free onto the device.
    const hw::Device device = hw::Device::melbourne(7);
    const Transpiler compiler(device);
    for (int n : {5, 6, 7}) {
        const auto bench = benchmarks::qaoaMaxcutPath(n);
        const auto program = compiler.compile(bench.circuit);
        EXPECT_EQ(program.swapCount, 0) << "qaoa-" << n;
    }
}

TEST(Transpiler, CompileWithPlacementRespectsMap)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Transpiler compiler(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const auto program = compiler.compileWithPlacement(c, {6, 8});
    EXPECT_EQ(program.initialMap, (std::vector{6, 8}));
    EXPECT_EQ(program.swapCount, 0);
    const auto used = program.usedQubits();
    EXPECT_EQ(used, (std::vector{6, 8}));
}

namespace {

/**
 * Reference subgraph-monomorphism enumerator: plain recursive
 * backtracking in pattern-vertex order with no pruning beyond
 * injectivity and edge preservation. The pruned production VF2 must
 * produce exactly this embedding *set*.
 */
std::vector<std::vector<int>>
referenceEmbeddings(const hw::Topology &pattern,
                    const hw::Topology &target)
{
    std::vector<std::vector<int>> out;
    std::vector<int> map(static_cast<std::size_t>(pattern.numQubits()),
                         -1);
    std::vector<bool> used(static_cast<std::size_t>(target.numQubits()),
                           false);
    const std::function<void(int)> recurse = [&](int v) {
        if (v == pattern.numQubits()) {
            out.push_back(map);
            return;
        }
        for (int t = 0; t < target.numQubits(); ++t) {
            if (used[std::size_t(t)])
                continue;
            bool ok = true;
            for (int u = 0; u < v; ++u) {
                if (pattern.adjacent(u, v) &&
                    !target.adjacent(map[std::size_t(u)], t)) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                continue;
            map[std::size_t(v)] = t;
            used[std::size_t(t)] = true;
            recurse(v + 1);
            map[std::size_t(v)] = -1;
            used[std::size_t(t)] = false;
        }
    };
    recurse(0);
    return out;
}

/** Sorted copy (embedding set comparison, order-independent). */
std::vector<std::vector<int>>
asSortedSet(std::vector<std::vector<int>> maps)
{
    std::sort(maps.begin(), maps.end());
    return maps;
}

} // namespace

TEST(Vf2, PrunedEnumerationMatchesReferenceOnSmallGraphs)
{
    // The degree / neighborhood-signature pruning must never change
    // the embedding *set* — sweep pattern/target pairs that exercise
    // paths, cycles, stars, and irregular-degree targets.
    const hw::Topology path3 = hw::Topology::linear(3);
    const hw::Topology path4 = hw::Topology::linear(4);
    const hw::Topology cycle4(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
    const hw::Topology star3(4, {{0, 1}, {0, 2}, {0, 3}});
    const hw::Topology kite(
        5, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}});
    const hw::Topology melbourne = hw::Topology::melbourne();
    const std::vector<std::pair<hw::Topology, hw::Topology>> cases = {
        {path3, hw::Topology::linear(5)}, {path3, melbourne},
        {path4, melbourne},               {cycle4, melbourne},
        {star3, melbourne},               {path3, kite},
        {cycle4, cycle4},                 {star3, star3},
    };
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &[pattern, target] = cases[i];
        const auto pruned = vf2AllEmbeddings(pattern, target);
        const auto reference = referenceEmbeddings(pattern, target);
        EXPECT_EQ(asSortedSet(pruned), asSortedSet(reference))
            << "case " << i;
    }
}

TEST(PlacementSearch, PlacementBeforeIsEspThenLexOrder)
{
    EXPECT_TRUE(placementBefore(0.9, {5, 4}, 0.8, {0, 1}));
    EXPECT_FALSE(placementBefore(0.8, {0, 1}, 0.9, {5, 4}));
    // Exact ESP tie: lexicographically smaller map ranks first,
    // regardless of which argument comes first.
    EXPECT_TRUE(placementBefore(0.5, {0, 2}, 0.5, {0, 3}));
    EXPECT_FALSE(placementBefore(0.5, {0, 3}, 0.5, {0, 2}));
    EXPECT_FALSE(placementBefore(0.5, {1, 2}, 0.5, {1, 2}));
}

TEST(TopPlacements, GoldenQaoa5Melbourne)
{
    // Pinned before the search rewrite (full rankedEmbeddings head at
    // %.17g); the branch-and-bound path must reproduce it exactly.
    const hw::Device device = hw::Device::melbourne(2);
    const Placer placer(device);
    const auto top =
        placer.topPlacements(benchmarks::qaoa5().circuit, 4);
    ASSERT_EQ(top.size(), 4u);
    EXPECT_EQ(top[0].esp, 0.67771989704512359);
    EXPECT_EQ(top[0].map, (std::vector{4, 3, 2, 1, 0}));
    EXPECT_EQ(top[1].esp, 0.67690638918959456);
    EXPECT_EQ(top[1].map, (std::vector{0, 1, 2, 3, 4}));
    EXPECT_EQ(top[2].esp, 0.66326125851578177);
    EXPECT_EQ(top[2].map, (std::vector{13, 1, 2, 3, 4}));
    EXPECT_EQ(top[3].esp, 0.6631284535386871);
    EXPECT_EQ(top[3].map, (std::vector{4, 3, 2, 1, 13}));
}

TEST(TopPlacements, GoldenQaoa7PathMelbourne)
{
    const hw::Device device = hw::Device::melbourne(2);
    const Placer placer(device);
    const auto top = placer.topPlacements(
        benchmarks::qaoaMaxcutPath(7).circuit, 4);
    ASSERT_EQ(top.size(), 4u);
    EXPECT_EQ(top[0].esp, 0.55807282166065075);
    EXPECT_EQ(top[0].map, (std::vector{6, 8, 9, 10, 4, 3, 2}));
    EXPECT_EQ(top[1].esp, 0.55796111214350863);
    EXPECT_EQ(top[1].map, (std::vector{2, 3, 4, 10, 9, 8, 6}));
    EXPECT_EQ(top[2].esp, 0.54371641452851904);
    EXPECT_EQ(top[2].map, (std::vector{7, 8, 9, 10, 4, 3, 2}));
    EXPECT_EQ(top[3].esp, 0.54317234450251706);
    EXPECT_EQ(top[3].map, (std::vector{2, 3, 4, 10, 9, 8, 7}));
}

TEST(TopPlacements, MatchesRankedEmbeddingsHead)
{
    // Bound pruning must be lossless: for every K the branch-and-bound
    // result equals the head of the exhaustive materialize-then-sort
    // path, map for map and bit for bit.
    const hw::Device device = hw::Device::melbourne(2);
    const Placer placer(device);
    const std::vector<Circuit> circuits = {
        benchmarks::qaoa5().circuit,
        benchmarks::qaoaMaxcutPath(6).circuit,
        benchmarks::qaoa6().circuit,
    };
    for (std::size_t c = 0; c < circuits.size(); ++c) {
        const auto ranked = placer.rankedEmbeddings(circuits[c]);
        ASSERT_FALSE(ranked.empty()) << "circuit " << c;
        for (std::size_t k : {std::size_t{1}, std::size_t{3},
                              std::size_t{8}, ranked.size() + 5}) {
            const auto top = placer.topPlacements(circuits[c], k);
            ASSERT_EQ(top.size(), std::min(k, ranked.size()))
                << "circuit " << c << " k=" << k;
            for (std::size_t i = 0; i < top.size(); ++i) {
                EXPECT_EQ(top[i].esp, ranked[i].esp)
                    << "circuit " << c << " k=" << k << " i=" << i;
                EXPECT_EQ(top[i].map, ranked[i].map)
                    << "circuit " << c << " k=" << k << " i=" << i;
            }
        }
    }
}

TEST(TopPlacements, EqualEspTiesOrderLexicographically)
{
    // On an ideal device every placement scores exactly 1.0, so the
    // returned order is pure tie-break: lexicographic on the map,
    // independent of enumeration order or pruning strength.
    const hw::Device device = hw::Device::idealMelbourne();
    const Placer placer(device);
    Circuit c(3, 3);
    c.cx(0, 1).cx(1, 2).measureAll();
    const auto top = placer.topPlacements(c, 6);
    ASSERT_EQ(top.size(), 6u);
    for (std::size_t i = 0; i < top.size(); ++i)
        EXPECT_EQ(top[i].esp, 1.0) << "i=" << i;
    for (std::size_t i = 1; i < top.size(); ++i)
        EXPECT_LT(top[i - 1].map, top[i].map) << "i=" << i;
    // And the exhaustive path agrees on the same canonical order.
    const auto ranked = placer.rankedEmbeddings(c);
    ASSERT_GE(ranked.size(), top.size());
    for (std::size_t i = 0; i < top.size(); ++i)
        EXPECT_EQ(top[i].map, ranked[i].map) << "i=" << i;
}

TEST(TopPlacements, BoundPruningActuallyFires)
{
    // Effort counters: the search must visit fewer completions than
    // the exhaustive enumeration produces, and report bound prunes.
    const hw::Device device = hw::Device::melbourne(2);
    const auto model = sharedEspModel(device);
    const Circuit logical = benchmarks::qaoaMaxcutPath(7).circuit;
    const InteractionGraph ig = interactionGraph(logical);
    const hw::Topology pattern(ig.numQubits, ig.edges);
    std::vector<int> pattern_index(std::size_t(ig.numQubits));
    for (int q = 0; q < ig.numQubits; ++q)
        pattern_index[std::size_t(q)] = q;
    const GateTrace trace = EspModel::trace(logical.decomposed());
    const PlacementCostModel cost(model, pattern, pattern_index, trace);
    const EmbeddingScorer scorer = [&](const std::vector<int> &emb,
                                       std::vector<int> &map_out,
                                       double &esp_out) {
        map_out = emb;
        esp_out = model->espOfTrace(trace, emb);
    };
    PlacementSearchStats stats;
    const auto top =
        topKPlacements(pattern, cost, scorer, 4, 100000, &stats);
    ASSERT_EQ(top.size(), 4u);
    EXPECT_GT(stats.nodesVisited, 0u);
    EXPECT_GT(stats.prunedBound, 0u);
    // 304 embeddings exist (pre-rewrite count); the bound must cut
    // well below full materialization.
    EXPECT_LT(stats.completions, 304u);
}

// Brute-force optimality check: for a tiny 2-qubit program the
// placer's embedding must achieve the maximum ESP over all pairs.
TEST(Placer, BruteForceOptimalityTwoQubits)
{
    const hw::Device device = hw::Device::melbourne(7);
    const Transpiler compiler(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();

    double best = 0.0;
    for (int a = 0; a < 14; ++a) {
        for (int b = 0; b < 14; ++b) {
            if (a == b || !device.topology().adjacent(a, b))
                continue;
            best = std::max(
                best,
                compiler.compileWithPlacement(c, {a, b}).esp);
        }
    }
    EXPECT_NEAR(compiler.compile(c).esp, best, 1e-12);
}

/** Every seed topology, as a synthetic device with spread errors. */
std::vector<hw::Device>
seedTopologyDevices()
{
    std::vector<hw::Device> devices;
    auto add = [&](const char *name, hw::Topology topo) {
        devices.push_back(hw::Device::synthetic(
            name, std::move(topo), hw::CalibrationSpec{},
            hw::NoiseSpec{}, 17));
    };
    add("linear-6", hw::Topology::linear(6));
    add("ring-8", hw::Topology::ring(8));
    add("grid-3x4", hw::Topology::grid(3, 4));
    add("full-5", hw::Topology::fullyConnected(5));
    add("melbourne", hw::Topology::melbourne());
    add("tokyo", hw::Topology::tokyo());
    add("heavy-hex-27", hw::Topology::heavyHex27());
    add("heavy-hex-127", hw::Topology::heavyHex127());
    return devices;
}

TEST(DistanceProvider, DenseAndOnDemandAgreeOnEverySeedTopology)
{
    // The provider pair must be interchangeable: same doubles from the
    // eager dense matrix and the lazy per-source Dijkstra, on every
    // seed topology, for both cost metrics, on full and masked views.
    // The set spans the selection threshold: heavy-hex-127 sits above
    // kDenseDistanceMaxQubits, everything else below.
    bool saw_small = false;
    bool saw_large = false;
    for (const hw::Device &device : seedTopologyDevices()) {
        (device.numQubits() <= kDenseDistanceMaxQubits ? saw_small
                                                       : saw_large) =
            true;
        const hw::DeviceView full(device);
        // A contiguous half-device mask (index-contiguous is enough:
        // distances through excluded qubits must go unreachable or
        // reroute identically in both implementations).
        std::vector<int> half;
        for (int q = 0; q < device.numQubits() / 2 + 1; ++q)
            half.push_back(q);
        const hw::DeviceView masked(device, half);
        for (const RouteCost cost :
             {RouteCost::Reliability, RouteCost::HopCount}) {
            for (const hw::DeviceView *view : {&full, &masked}) {
                const DenseDistanceProvider dense(*view, cost);
                const OnDemandDistanceProvider lazy(*view, cost);
                for (int a = 0; a < device.numQubits(); ++a) {
                    for (int b = 0; b < device.numQubits(); ++b) {
                        EXPECT_EQ(dense.distance(a, b),
                                  lazy.distance(a, b))
                            << device.name() << " a=" << a
                            << " b=" << b;
                    }
                }
            }
        }
    }
    EXPECT_TRUE(saw_small);
    EXPECT_TRUE(saw_large);
}

TEST(DistanceProvider, SharedProviderSelectsByDeviceSize)
{
    const hw::Device small = hw::Device::melbourne(2);
    const hw::DeviceView small_view(small);
    ASSERT_LE(small.numQubits(), kDenseDistanceMaxQubits);
    const auto small_provider =
        sharedDistanceProvider(small_view, RouteCost::Reliability);
    EXPECT_NE(dynamic_cast<const DenseDistanceProvider *>(
                  small_provider.get()),
              nullptr);
    // The dense path must be bit-identical to the raw matrix.
    const auto matrix =
        distanceMatrix(small, RouteCost::Reliability);
    for (int a = 0; a < small.numQubits(); ++a) {
        for (int b = 0; b < small.numQubits(); ++b)
            EXPECT_EQ(small_provider->distance(a, b), matrix[a][b]);
    }

    const hw::Device large = hw::Device::synthetic(
        "heavy-hex-127", hw::Topology::heavyHex127(),
        hw::CalibrationSpec{}, hw::NoiseSpec{}, 17);
    const hw::DeviceView large_view(large);
    const auto large_provider =
        sharedDistanceProvider(large_view, RouteCost::Reliability);
    EXPECT_NE(dynamic_cast<const OnDemandDistanceProvider *>(
                  large_provider.get()),
              nullptr);
    // Memoized per view fingerprint: same view, same provider object.
    EXPECT_EQ(large_provider.get(),
              sharedDistanceProvider(large_view,
                                     RouteCost::Reliability)
                  .get());
}

TEST(DistanceProvider, OnDemandComputesOnlyQueriedRows)
{
    const hw::Device large = hw::Device::synthetic(
        "heavy-hex-127", hw::Topology::heavyHex127(),
        hw::CalibrationSpec{}, hw::NoiseSpec{}, 17);
    const hw::DeviceView view(large);
    const OnDemandDistanceProvider lazy(view, RouteCost::HopCount);
    EXPECT_EQ(lazy.rowsComputed(), 0u);
    lazy.distance(3, 99);
    EXPECT_EQ(lazy.rowsComputed(), 1u);
    lazy.distance(3, 4); // same source row, no new work
    EXPECT_EQ(lazy.rowsComputed(), 1u);
    lazy.distance(100, 3);
    EXPECT_EQ(lazy.rowsComputed(), 2u);
}

TEST(DistanceProvider, MaskedPairsAreUnreachable)
{
    const hw::Device device = hw::Device::melbourne(2);
    const hw::DeviceView view(device, {0, 1, 2});
    const DenseDistanceProvider dense(view, RouteCost::HopCount);
    EXPECT_EQ(dense.distance(0, 7), kUnreachableDistance);
    EXPECT_EQ(dense.distance(7, 0), kUnreachableDistance);
    EXPECT_LT(dense.distance(0, 2), kUnreachableDistance);
}

TEST(TopPlacements, FullMaskIsBitIdenticalToNoMask)
{
    // Passing an all-true mask must follow the literal unmasked code
    // path outcome: same placements, same scores, same order.
    const hw::Device device = hw::Device::melbourne(2);
    const auto logical = benchmarks::qaoaMaxcutPath(7).circuit;
    const Placer unmasked(device);
    const Placer masked{hw::DeviceView(
        device, [&] {
            std::vector<int> all;
            for (int q = 0; q < device.numQubits(); ++q)
                all.push_back(q);
            return all;
        }())};
    const auto a = unmasked.topPlacements(logical, 4);
    const auto b = masked.topPlacements(logical, 4);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].map, b[i].map);
        EXPECT_EQ(a[i].esp, b[i].esp); // bit-identical, not NEAR
    }
}

TEST(TopPlacements, RegionMaskConfinesPlacements)
{
    const hw::Device device = hw::Device::melbourne(2);
    const hw::DeviceView view(device, {0, 1, 2, 3, 4, 5, 6, 13});
    const auto logical = benchmarks::qaoaMaxcutPath(5).circuit;
    const Placer placer(view);
    const auto top = placer.topPlacements(logical, 4);
    ASSERT_FALSE(top.empty());
    for (const auto &placement : top) {
        for (int p : placement.map)
            EXPECT_TRUE(view.allowed(p)) << "physical qubit " << p;
    }
}

TEST(Transpiler, RegionCompileStaysInsideAndVerifies)
{
    const hw::Device device = hw::Device::melbourne(2);
    const hw::DeviceView view(device, {0, 1, 2, 3, 4, 5, 6, 13, 12});
    const Transpiler compiler(view, RouteCost::Reliability, true);
    const auto program = compiler.compile(benchmarks::bv6().circuit);
    for (const auto &g : program.physical.gates()) {
        for (int q : g.qubits)
            EXPECT_TRUE(view.allowed(q)) << "gate touches qubit " << q;
    }
    EXPECT_GT(program.esp, 0.0);
}

TEST(Transpiler, FullViewCompileMatchesDeviceCompile)
{
    const hw::Device device = hw::Device::melbourne(2);
    const Transpiler by_device(device);
    const Transpiler by_view{hw::DeviceView(device)};
    const auto logical = benchmarks::bv6().circuit;
    const auto a = by_device.compile(logical);
    const auto b = by_view.compile(logical);
    EXPECT_EQ(a.initialMap, b.initialMap);
    EXPECT_EQ(a.finalMap, b.finalMap);
    EXPECT_EQ(a.swapCount, b.swapCount);
    EXPECT_EQ(a.esp, b.esp); // bit-identical
    EXPECT_EQ(a.physical.toQasm(), b.physical.toQasm());
}

TEST(Vf2, MaskRestrictsEmbeddingTargets)
{
    const hw::Topology pattern = hw::Topology::linear(3);
    const hw::Topology target = hw::Topology::melbourne();
    std::vector<bool> allowed(14, false);
    for (int q : {0, 1, 2, 3})
        allowed[q] = true;
    const auto all = vf2AllEmbeddings(pattern, target, 100000);
    const auto masked =
        vf2AllEmbeddings(pattern, target, 100000, &allowed);
    EXPECT_LT(masked.size(), all.size());
    ASSERT_FALSE(masked.empty());
    for (const auto &embedding : masked) {
        for (int p : embedding)
            EXPECT_TRUE(allowed[p]);
    }
}

} // namespace
} // namespace qedm::transpile
