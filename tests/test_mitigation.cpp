/**
 * @file
 * Unit tests for readout mitigation and the invert-and-measure
 * transform.
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "sim/mitigation.hpp"
#include "stats/metrics.hpp"
#include "transpile/invert_measure.hpp"
#include "transpile/transpiler.hpp"

namespace qedm::sim {
namespace {

using circuit::Circuit;

TEST(FlipOutcomeBits, XorsMask)
{
    const auto d = stats::Distribution::fromProbabilities(
        {0.1, 0.2, 0.3, 0.4});
    const auto flipped = flipOutcomeBits(d, 0b11);
    EXPECT_DOUBLE_EQ(flipped.prob(0b00), 0.4);
    EXPECT_DOUBLE_EQ(flipped.prob(0b11), 0.1);
    EXPECT_DOUBLE_EQ(flipped.prob(0b01), 0.3);
    // Zero mask is the identity.
    const auto same = flipOutcomeBits(d, 0);
    EXPECT_DOUBLE_EQ(same.prob(2), d.prob(2));
    EXPECT_THROW(flipOutcomeBits(d, 0b100), UserError);
}

TEST(ReadoutMitigator, RecoversTrueDistributionExactly)
{
    // Build a device with known confusion, push a known distribution
    // through the exact classical channel (executor machinery), then
    // mitigate: must recover the ideal result.
    hw::Device device = hw::Device::idealMelbourne();
    hw::Calibration cal = device.calibration();
    cal.qubit(0).readoutP01 = 0.08;
    cal.qubit(0).readoutP10 = 0.22;
    cal.qubit(1).readoutP01 = 0.03;
    cal.qubit(1).readoutP10 = 0.11;
    device = device.withCalibration(cal);

    Circuit c(14, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    const Executor exec(device);
    const auto measured = exec.exactDistribution(c);
    // Confused: mass leaked out of 00/11.
    EXPECT_LT(measured.prob(0b00) + measured.prob(0b11), 0.999);

    const ReadoutMitigator mitigator(device, {0, 1});
    const auto recovered = mitigator.mitigate(measured);
    EXPECT_NEAR(recovered.prob(0b00), 0.5, 1e-9);
    EXPECT_NEAR(recovered.prob(0b11), 0.5, 1e-9);
    EXPECT_NEAR(recovered.prob(0b01), 0.0, 1e-9);
}

TEST(ReadoutMitigator, ImprovesIstOnSampledCounts)
{
    hw::Device device = hw::Device::idealMelbourne();
    hw::Calibration cal = device.calibration();
    for (int q : {0, 1, 2}) {
        cal.qubit(q).readoutP01 = 0.05;
        cal.qubit(q).readoutP10 = 0.20;
    }
    device = device.withCalibration(cal);
    Circuit c(14, 3);
    c.x(0).x(1).x(2);
    c.measure(0, 0).measure(1, 1).measure(2, 2);
    const Executor exec(device);
    Rng rng(5);
    const auto raw = stats::Distribution::fromCounts(
        exec.run(c, 40000, rng));
    const ReadoutMitigator mitigator(device, {0, 1, 2});
    const auto fixed = mitigator.mitigate(raw);
    const Outcome correct = 0b111;
    EXPECT_GT(stats::pst(fixed, correct), stats::pst(raw, correct));
    EXPECT_GT(stats::ist(fixed, correct), stats::ist(raw, correct));
}

TEST(ReadoutMitigator, Validates)
{
    const hw::Device device = hw::Device::melbourne(3);
    EXPECT_THROW(ReadoutMitigator(device, {}), UserError);
    const ReadoutMitigator m(device, {0, 1});
    EXPECT_THROW(m.mitigate(stats::Distribution::uniform(3)),
                 UserError);
}

TEST(InvertMeasure, InsertsXAndReportsMask)
{
    Circuit c(3, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    const auto inverted = transpile::invertMeasurements(c);
    EXPECT_EQ(inverted.flipMask, 0b11u);
    // Two extra X gates.
    EXPECT_EQ(inverted.circuit.size(), c.size() + 2);
    // X immediately precedes each measure.
    const auto &gates = inverted.circuit.gates();
    for (std::size_t i = 0; i < gates.size(); ++i) {
        if (gates[i].kind == circuit::OpKind::Measure) {
            ASSERT_GT(i, 0u);
            EXPECT_EQ(gates[i - 1].kind, circuit::OpKind::X);
            EXPECT_EQ(gates[i - 1].qubits, gates[i].qubits);
        }
    }
    Circuit no_measure(2, 0);
    no_measure.h(0);
    EXPECT_THROW(transpile::invertMeasurements(no_measure), UserError);
}

TEST(InvertMeasure, IdealSemanticsPreservedAfterUnflip)
{
    const auto bench = benchmarks::bv6();
    const auto inverted =
        transpile::invertMeasurements(bench.circuit);
    const auto dist = sim::idealDistribution(inverted.circuit);
    const auto unflipped = flipOutcomeBits(dist, inverted.flipMask);
    EXPECT_NEAR(unflipped.prob(bench.expected), 1.0, 1e-9);
}

TEST(InvertMeasure, HelpsUnderBiasedReadout)
{
    // All-ones answer with p10 >> p01: measuring the inverted (all
    // zeros) state avoids the expensive |1> readouts.
    hw::Device device = hw::Device::idealMelbourne();
    hw::Calibration cal = device.calibration();
    for (int q : {0, 1, 2, 3}) {
        cal.qubit(q).readoutP01 = 0.02;
        cal.qubit(q).readoutP10 = 0.25;
    }
    device = device.withCalibration(cal);

    Circuit c(14, 4);
    for (int q : {0, 1, 2, 3})
        c.x(q);
    for (int q : {0, 1, 2, 3})
        c.measure(q, q);
    const Outcome correct = 0b1111;

    const Executor exec(device);
    const auto plain = exec.exactDistribution(c);
    const auto inverted = transpile::invertMeasurements(c);
    const auto im = flipOutcomeBits(
        exec.exactDistribution(inverted.circuit), inverted.flipMask);
    EXPECT_GT(stats::pst(im, correct), stats::pst(plain, correct));
}

} // namespace
} // namespace qedm::sim
