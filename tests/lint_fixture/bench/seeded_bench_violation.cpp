// Seeded violation for the lint self-test: bench/ relaxes the
// stdout/assert rules but must still reject raw randomness.
#include <random>

int
seededBenchViolation()
{
    std::mt19937 engine(42); // rng-discipline must fire here
    return static_cast<int>(engine());
}
