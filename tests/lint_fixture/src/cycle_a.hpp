// Seeded [include-cycle] violation, half A: includes cycle_b.hpp,
// which includes this header back.
#pragma once

#include "cycle_b.hpp"

namespace qedm::fixture {

inline int
cycleA()
{
    return 1;
}

} // namespace qedm::fixture
