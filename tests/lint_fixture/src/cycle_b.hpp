// Seeded [include-cycle] violation, half B: completes the
// cycle_a.hpp <-> cycle_b.hpp loop.
#pragma once

#include "cycle_a.hpp"

namespace qedm::fixture {

inline int
cycleB()
{
    return 2;
}

} // namespace qedm::fixture
