// Seeded [layering] violation: verifier-layer code reaching into the
// transpiler's implementation headers.
#include "transpile/router.hpp"

namespace qedm::check {

int
layeringViolation()
{
    return 1;
}

} // namespace qedm::check
