// Lint self-test fixture (see seeded_violations.hpp). Never compiled;
// only scanned by the `lint_fixture` ctest case.

#include <cassert>
#include <cstdlib>
#include <iostream>

#include "seeded_violations.hpp"

namespace lint_fixture {

int
noisyRandomSum(int n)
{
    assert(n >= 0); // assert-discipline
    std::srand(7u); // rng-discipline
    int sum = 0;
    for (int i = 0; i < n; ++i)
        sum += std::rand() % 10; // rng-discipline
    std::cout << "sum: " << sum << "\n"; // stdout-discipline
    return sum;
}

} // namespace lint_fixture
