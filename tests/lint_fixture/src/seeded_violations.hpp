// Lint self-test fixture: this header deliberately violates every
// qedm_lint rule, including the include-guard rule (it intentionally
// omits the guard pragma). The ctest case `lint_fixture` runs
// qedm_lint over tests/lint_fixture and expects a nonzero exit; if
// the linter ever stops rejecting this file, the test fails.

#include <cstdlib>
#include <random>

namespace lint_fixture {

inline int *
leakyAllocate()
{
    return new int(42); // naked-new
}

inline double
nondeterministicDraw()
{
    std::mt19937 gen(std::random_device{}()); // rng-discipline (x2)
    return static_cast<double>(gen()) / 4294967296.0;
}

} // namespace lint_fixture
