// Seeded dense-distance violation: library code reaching for the
// dense all-pairs matrix instead of sharedDistanceProvider.
#include "transpile/distances.hpp"

namespace fixture {

double
worstCaseDistance()
{
    const auto matrix = qedm::transpile::sharedDistanceMatrix(
        someDevice(), qedm::transpile::RouteCost::Reliability);
    return matrix->at(0, 1);
}

} // namespace fixture
