/**
 * @file
 * Unit tests for qedm::check: the static verifier passes (circuit
 * structure, mapping/coupling/SWAP bookkeeping, measurement-remap
 * consistency, ESP consistency), their diagnostics, and the
 * transpiler/ensemble/pipeline wiring.
 * Fixtures corrupt real routed circuits — an uncoupled CX, a
 * non-bijective layout, a stale ESP — and assert that the right pass
 * rejects with the right diagnostic.
 */

#include <gtest/gtest.h>

#include <string>

#include "benchmarks/benchmarks.hpp"
#include "check/check.hpp"
#include "check/circuit_checker.hpp"
#include "check/esp_checker.hpp"
#include "check/mapping_checker.hpp"
#include "check/measure_checker.hpp"
#include "core/edm.hpp"
#include "core/ensemble.hpp"
#include "hw/device.hpp"
#include "transpile/esp.hpp"
#include "transpile/transpiler.hpp"

namespace qedm::check {
namespace {

using circuit::Circuit;
using transpile::CompiledProgram;
using transpile::Transpiler;

/** A freshly compiled BV-6 program on the paper's device. */
CompiledProgram
compiledBv6(const hw::Device &device)
{
    const Transpiler compiler(device);
    return compiler.compile(benchmarks::bv6().circuit);
}

ProgramView
viewOf(const CompiledProgram &program, const hw::Device &device)
{
    ProgramView view;
    view.physical = &program.physical;
    view.initialMap = &program.initialMap;
    view.finalMap = &program.finalMap;
    view.swapCount = program.swapCount;
    view.esp = program.esp;
    view.device = &device;
    return view;
}

TEST(CheckErrorTest, CarriesPassGateAndQubitDiagnostics)
{
    const CheckError err("mapping", "cx acts on an uncoupled pair", 12,
                         {3, 9});
    EXPECT_EQ(err.pass(), "mapping");
    EXPECT_EQ(err.kind(), CheckErrorKind::Unspecified);
    EXPECT_EQ(err.gateIndex(), 12);
    EXPECT_EQ(err.qubits(), (std::vector<int>{3, 9}));
    const std::string what = err.what();
    EXPECT_NE(what.find("check[mapping]"), std::string::npos);
    EXPECT_NE(what.find("gate 12"), std::string::npos);
    EXPECT_NE(what.find("p3,p9"), std::string::npos);
}

TEST(CheckErrorTest, CarriesStructuredKind)
{
    const CheckError err("mapping", CheckErrorKind::UncoupledGate,
                         "cx acts on an uncoupled pair", 12, {3, 9});
    EXPECT_EQ(err.kind(), CheckErrorKind::UncoupledGate);
    EXPECT_STREQ(checkErrorKindName(err.kind()), "uncoupled-gate");
    EXPECT_EQ(err.pass(), "mapping");
    EXPECT_EQ(err.gateIndex(), 12);
    EXPECT_EQ(err.qubits(), (std::vector<int>{3, 9}));
}

TEST(CircuitCheckerTest, AcceptsCompiledProgram)
{
    const hw::Device device = hw::Device::melbourne(2);
    const CompiledProgram program = compiledBv6(device);
    EXPECT_NO_THROW(CircuitChecker{}.check(program.physical));
}

TEST(CircuitCheckerTest, RejectsUseAfterMeasure)
{
    Circuit c(3, 3);
    c.h(0).measure(0, 0).x(0);
    try {
        CircuitChecker{}.check(c);
        FAIL() << "use-after-measure not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "circuit");
        EXPECT_EQ(err.kind(), CheckErrorKind::UseAfterMeasure);
        EXPECT_EQ(err.gateIndex(), 2);
    }
}

TEST(CircuitCheckerTest, AllowsDeclaredMidCircuitMeasure)
{
    Circuit c(3, 3);
    c.h(0).measure(0, 0).x(0);
    CircuitCheckOptions options;
    options.allowUseAfterMeasure = true;
    EXPECT_NO_THROW(CircuitChecker{options}.check(c));
}

TEST(CircuitCheckerTest, RejectsRawGateOutOfRange)
{
    // Raw gate lists bypass the builder validation; the checker must
    // catch them anyway.
    const std::vector<circuit::Gate> gates{
        {circuit::OpKind::Cx, {0, 7}, {}, -1}};
    try {
        CircuitChecker{}.checkGates(gates, 4, 4);
        FAIL() << "out-of-range qubit not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "circuit");
        EXPECT_EQ(err.kind(), CheckErrorKind::QubitOutOfRange);
        EXPECT_EQ(err.gateIndex(), 0);
    }
}

TEST(CircuitCheckerTest, RejectsRawGateArityMismatch)
{
    const std::vector<circuit::Gate> gates{
        {circuit::OpKind::Cx, {0}, {}, -1}};
    try {
        CircuitChecker{}.checkGates(gates, 4, 4);
        FAIL() << "arity mismatch not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.kind(), CheckErrorKind::ArityMismatch);
    }
}

TEST(MappingCheckerTest, AcceptsCompiledProgram)
{
    const hw::Device device = hw::Device::melbourne(2);
    const CompiledProgram program = compiledBv6(device);
    EXPECT_NO_THROW(MappingChecker{}.run(viewOf(program, device)));
}

TEST(MappingCheckerTest, RejectsUncoupledCx)
{
    const hw::Device device = hw::Device::melbourne(2);
    CompiledProgram program = compiledBv6(device);
    // Corrupt the routed circuit with a CX between qubits 0 and 7,
    // which are not coupled on melbourne.
    ASSERT_FALSE(device.topology().adjacent(0, 7));
    program.physical.cx(0, 7);
    try {
        MappingChecker{}.checkCoupling(program.physical, device);
        FAIL() << "uncoupled CX not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "mapping");
        EXPECT_EQ(err.gateIndex(),
                  static_cast<int>(program.physical.size()) - 1);
        EXPECT_EQ(err.kind(), CheckErrorKind::UncoupledGate);
        EXPECT_EQ(err.qubits(), (std::vector<int>{0, 7}));
    }
}

TEST(MappingCheckerTest, RejectsNonBijectiveLayout)
{
    const hw::Device device = hw::Device::melbourne(2);
    CompiledProgram program = compiledBv6(device);
    ASSERT_GE(program.initialMap.size(), 2u);
    program.initialMap[1] = program.initialMap[0];
    try {
        MappingChecker{}.run(viewOf(program, device));
        FAIL() << "non-bijective layout not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "mapping");
        EXPECT_EQ(err.kind(), CheckErrorKind::LayoutNotBijective);
    }
}

TEST(MappingCheckerTest, RejectsLayoutOutsideDevice)
{
    const hw::Device device = hw::Device::melbourne(2);
    CompiledProgram program = compiledBv6(device);
    program.initialMap[0] = device.numQubits();
    try {
        MappingChecker{}.run(viewOf(program, device));
        FAIL() << "out-of-device layout not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.kind(), CheckErrorKind::LayoutOutOfRange);
    }
}

TEST(MappingCheckerTest, RejectsStaleFinalMap)
{
    const hw::Device device = hw::Device::melbourne(2);
    CompiledProgram program = compiledBv6(device);
    ASSERT_GE(program.finalMap.size(), 2u);
    std::swap(program.finalMap[0], program.finalMap[1]);
    try {
        MappingChecker{}.run(viewOf(program, device));
        FAIL() << "stale final map not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "mapping");
        EXPECT_EQ(err.kind(), CheckErrorKind::SwapTrailMismatch);
    }
}

TEST(MappingCheckerTest, RejectsSwapCountMismatch)
{
    const hw::Device device = hw::Device::melbourne(2);
    CompiledProgram program = compiledBv6(device);
    program.swapCount += 1;
    try {
        MappingChecker{}.run(viewOf(program, device));
        FAIL() << "SWAP count mismatch not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "mapping");
        EXPECT_EQ(err.kind(), CheckErrorKind::SwapCountMismatch);
    }
}

TEST(EspCheckerTest, RecomputationMatchesTranspilerScore)
{
    const hw::Device device = hw::Device::melbourne(2);
    const CompiledProgram program = compiledBv6(device);
    EXPECT_NEAR(EspChecker{}.recompute(program.physical, device),
                transpile::esp(program.physical, device), 1e-15);
    EXPECT_NO_THROW(EspChecker{}.run(viewOf(program, device)));
}

TEST(EspCheckerTest, ToleratesTinyReportingNoise)
{
    const hw::Device device = hw::Device::melbourne(2);
    CompiledProgram program = compiledBv6(device);
    program.esp += 1e-12;
    EXPECT_NO_THROW(EspChecker{}.run(viewOf(program, device)));
}

TEST(EspCheckerTest, RejectsStaleEsp)
{
    const hw::Device device = hw::Device::melbourne(2);
    CompiledProgram program = compiledBv6(device);
    program.esp += 1e-3; // score no longer matches the circuit
    try {
        EspChecker{}.run(viewOf(program, device));
        FAIL() << "stale ESP not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "esp");
        EXPECT_EQ(err.kind(), CheckErrorKind::EspMismatch);
    }
}

TEST(EspCheckerTest, RejectsCircuitEditedAfterScoring)
{
    // The motivating bug: a transform edits the routed circuit after
    // the score pass and forgets to re-score it.
    const hw::Device device = hw::Device::melbourne(2);
    CompiledProgram program = compiledBv6(device);
    const auto [a, b] = std::pair{device.topology().edges().front().a,
                                  device.topology().edges().front().b};
    program.physical.cx(a, b);
    EXPECT_THROW(EspChecker{}.run(viewOf(program, device)), CheckError);
}

TEST(MeasureCheckerTest, AcceptsCompiledProgram)
{
    const hw::Device device = hw::Device::melbourne(2);
    const CompiledProgram program = compiledBv6(device);
    EXPECT_NO_THROW(MeasureChecker{}.run(viewOf(program, device)));
}

TEST(MeasureCheckerTest, AcceptsLogicalSourceThroughFinalMap)
{
    const hw::Device device = hw::Device::melbourne(2);
    const CompiledProgram program = compiledBv6(device);
    const Circuit logical = benchmarks::bv6().circuit;
    ProgramView view = viewOf(program, device);
    view.logical = &logical;
    EXPECT_NO_THROW(MeasureChecker{}.run(view));
}

TEST(MeasureCheckerTest, RejectsMeasureOffFinalLayout)
{
    // A measure left on a stale physical qubit after SWAP insertion:
    // the final map's image no longer contains the measured qubit.
    Circuit physical(4, 1);
    physical.h(0).measure(3, 0);
    const std::vector<int> final_map{0, 1};
    try {
        MeasureChecker{}.checkMeasureTargets(physical, final_map);
        FAIL() << "off-layout measure not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "measure");
        EXPECT_EQ(err.kind(), CheckErrorKind::MeasureOffLayout);
        EXPECT_EQ(err.qubits(), (std::vector<int>{3}));
    }
}

TEST(MeasureCheckerTest, RejectsDuplicateClbitWrites)
{
    Circuit physical(4, 2);
    physical.measure(0, 0).measure(1, 0);
    try {
        MeasureChecker{}.checkMeasureTargets(physical, {0, 1});
        FAIL() << "duplicate clbit write not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "measure");
        EXPECT_EQ(err.kind(), CheckErrorKind::ClbitMisuse);
    }
}

TEST(MeasureCheckerTest, RejectsRemapMismatch)
{
    // The logical program reads logical qubit 0, which the final map
    // sends to physical 5 — but the physical program measures 6.
    Circuit logical(2, 1);
    logical.cx(0, 1).measure(0, 0);
    Circuit physical(14, 1);
    physical.measure(6, 0);
    const std::vector<int> final_map{5, 6};
    try {
        MeasureChecker{}.checkMeasureRemap(logical, physical,
                                           final_map);
        FAIL() << "remapped measure mismatch not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "measure");
        EXPECT_EQ(err.kind(), CheckErrorKind::MeasureRemapMismatch);
        EXPECT_EQ(err.qubits(), (std::vector<int>{6, 5}));
    }
}

TEST(MeasureCheckerTest, RejectsMissingPhysicalMeasure)
{
    Circuit logical(2, 2);
    logical.measure(0, 0).measure(1, 1);
    Circuit physical(14, 2);
    physical.measure(5, 0);
    try {
        MeasureChecker{}.checkMeasureRemap(logical, physical, {5, 6});
        FAIL() << "dropped measure not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.kind(), CheckErrorKind::MeasureRemapMismatch);
    }
}

TEST(MeasureCheckerTest, KindNamesAreStable)
{
    EXPECT_STREQ(checkErrorKindName(CheckErrorKind::MeasureOffLayout),
                 "measure-off-layout");
    EXPECT_STREQ(
        checkErrorKindName(CheckErrorKind::MeasureRemapMismatch),
        "measure-remap-mismatch");
}

TEST(VerifyProgramTest, RunsEveryStandardPass)
{
    const hw::Device device = hw::Device::melbourne(2);
    const CompiledProgram program = compiledBv6(device);
    EXPECT_EQ(verifyProgram(viewOf(program, device)),
              standardPasses().size());
    EXPECT_EQ(standardPasses().size(), 4u);
}

TEST(TranspilerHookTest, CheckPassRunsWhenVerifyEnabled)
{
    const hw::Device device = hw::Device::melbourne(2);
    const Transpiler verified(device, transpile::RouteCost::Reliability,
                              true);
    const auto trace =
        verified.compileWithTrace(benchmarks::bv6().circuit);
    ASSERT_EQ(trace.passes.size(), 4u);
    EXPECT_EQ(trace.passes.back().name, "check");
    EXPECT_EQ(trace.passes.back().metrics.at("passesRun"), 4.0);
}

TEST(TranspilerHookTest, CheckPassAbsentWhenVerifyDisabled)
{
    const hw::Device device = hw::Device::melbourne(2);
    const Transpiler unverified(device,
                                transpile::RouteCost::Reliability,
                                false);
    const auto trace =
        unverified.compileWithTrace(benchmarks::bv6().circuit);
    ASSERT_EQ(trace.passes.size(), 3u);
    EXPECT_EQ(trace.passes.back().name, "score");
}

TEST(TranspilerHookTest, VerifiedCompileMatchesUnverified)
{
    const hw::Device device = hw::Device::melbourne(2);
    const auto logical = benchmarks::bv6().circuit;
    const Transpiler on(device, transpile::RouteCost::Reliability,
                        true);
    const Transpiler off(device, transpile::RouteCost::Reliability,
                         false);
    const CompiledProgram a = on.compile(logical);
    const CompiledProgram b = off.compile(logical);
    EXPECT_EQ(a.physical.fingerprint(), b.physical.fingerprint());
    EXPECT_EQ(a.initialMap, b.initialMap);
    EXPECT_EQ(a.finalMap, b.finalMap);
    EXPECT_DOUBLE_EQ(a.esp, b.esp);
}

TEST(EnsembleHookTest, VerifiedBuildProducesValidMembers)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EnsembleConfig config;
    config.verifyPasses = true;
    const core::EnsembleBuilder builder(device, config);
    const auto members = builder.build(benchmarks::bv6().circuit);
    ASSERT_FALSE(members.empty());
    for (const auto &member : members)
        EXPECT_NO_THROW(verifyProgram(viewOf(member, device)));
}

TEST(PipelineHookTest, EdmRunWithVerifyPassesEnabled)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EdmConfig config;
    config.totalShots = 512;
    config.verifyPasses = true;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(5);
    const auto result = pipeline.run(benchmarks::bv6().circuit, rng);
    EXPECT_FALSE(result.members.empty());
}

TEST(MappingCheckerTest, AcceptsProgramInsideRegion)
{
    const hw::Device device = hw::Device::melbourne(2);
    const hw::DeviceView region(device,
                                {0, 1, 2, 3, 4, 5, 6, 13, 12});
    const Transpiler compiler(region);
    const CompiledProgram program =
        compiler.compile(benchmarks::bv6().circuit);
    ProgramView view = viewOf(program, device);
    view.region = &region;
    EXPECT_NO_THROW(MappingChecker{}.run(view));
}

TEST(MappingCheckerTest, RejectsLayoutOutsideRegion)
{
    // A program compiled against the full device escapes a mask that
    // excludes one of its qubits; the region pass must reject it.
    const hw::Device device = hw::Device::melbourne(2);
    const CompiledProgram program = compiledBv6(device);
    std::vector<int> partial;
    for (int q = 0; q < device.numQubits(); ++q) {
        if (q != program.initialMap[0])
            partial.push_back(q);
    }
    const hw::DeviceView region(device, partial);
    ProgramView view = viewOf(program, device);
    view.region = &region;
    try {
        MappingChecker{}.run(view);
        FAIL() << "out-of-region layout not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.pass(), "mapping");
        EXPECT_EQ(err.kind(), CheckErrorKind::QubitOutsideRegion);
        EXPECT_STREQ(checkErrorKindName(err.kind()),
                     "qubit-outside-region");
    }
}

TEST(MappingCheckerTest, RejectsGateEscapingRegion)
{
    // The maps stay inside the region but a gate (e.g. a routed SWAP
    // leg) touches a disallowed qubit.
    const hw::Device device = hw::Device::melbourne(2);
    const hw::DeviceView region(device,
                                {0, 1, 2, 3, 4, 5, 6, 13, 12});
    const Transpiler compiler(region);
    CompiledProgram program =
        compiler.compile(benchmarks::bv6().circuit);
    ASSERT_FALSE(region.allowed(8));
    ASSERT_TRUE(device.topology().adjacent(7, 8));
    program.physical.cx(7, 8);
    ProgramView view = viewOf(program, device);
    view.region = &region;
    try {
        MappingChecker{}.checkRegion(view, region);
        FAIL() << "out-of-region gate not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.kind(), CheckErrorKind::QubitOutsideRegion);
    }
}

TEST(MappingCheckerTest, RejectsMeasureEscapingRegion)
{
    // checkCoupling skips measures, so the region walk must not: a
    // measurement on a disallowed qubit is an escape too.
    const hw::Device device = hw::Device::melbourne(2);
    const hw::DeviceView region(device,
                                {0, 1, 2, 3, 4, 5, 6, 13, 12});
    const Transpiler compiler(region);
    CompiledProgram program =
        compiler.compile(benchmarks::bv6().circuit);
    ASSERT_FALSE(region.allowed(9));
    program.physical.measure(9, 0);
    ProgramView view = viewOf(program, device);
    view.region = &region;
    try {
        MappingChecker{}.checkRegion(view, region);
        FAIL() << "out-of-region measure not rejected";
    } catch (const CheckError &err) {
        EXPECT_EQ(err.kind(), CheckErrorKind::QubitOutsideRegion);
    }
}

TEST(MappingCheckerTest, FullRegionViewIsNeverRejected)
{
    const hw::Device device = hw::Device::melbourne(2);
    const hw::DeviceView full(device);
    const CompiledProgram program = compiledBv6(device);
    ProgramView view = viewOf(program, device);
    view.region = &full;
    EXPECT_NO_THROW(MappingChecker{}.run(view));
}

} // namespace
} // namespace qedm::check
