/**
 * @file
 * Unit tests for the error-budget analyzer and predictive ensemble
 * selection.
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "core/ensemble.hpp"
#include "core/error_budget.hpp"
#include "hw/device.hpp"
#include "stats/metrics.hpp"

namespace qedm::core {
namespace {

TEST(ErrorBudget, CoversAllFamiliesAndIdealBound)
{
    const hw::Device device = hw::Device::melbourne(2);
    const EnsembleBuilder builder(device);
    const auto bench = benchmarks::bv6();
    const auto program = builder.candidates(bench.circuit).front();
    const auto budget =
        errorBudget(device, program.physical, bench.expected);

    ASSERT_EQ(budget.entries.size(), 5u);
    EXPECT_GT(budget.basePst, 0.0);
    EXPECT_LT(budget.basePst, budget.idealPst);
    // BV is deterministic: ideal PST is 1.
    EXPECT_NEAR(budget.idealPst, 1.0, 1e-6);
    // Every single-family removal stays at or below the ideal bound.
    for (const auto &entry : budget.entries) {
        EXPECT_LE(entry.pstWithout, budget.idealPst + 1e-9)
            << entry.source;
        EXPECT_NEAR(entry.pstRecovered,
                    entry.pstWithout - budget.basePst, 1e-12);
    }
}

TEST(ErrorBudget, CoherentFamilyDominatesOnThisModel)
{
    // The device model is built so mapping-pinned coherent errors are
    // the primary IST killer; the budget must reflect that.
    const hw::Device device = hw::Device::melbourne(2);
    const EnsembleBuilder builder(device);
    const auto bench = benchmarks::bv6();
    const auto program = builder.candidates(bench.circuit).front();
    const auto budget =
        errorBudget(device, program.physical, bench.expected);
    double coherent_gain = 0.0, max_other = 0.0;
    for (const auto &entry : budget.entries) {
        if (entry.source.rfind("coherent", 0) == 0)
            coherent_gain = entry.pstRecovered;
        else
            max_other = std::max(max_other, entry.pstRecovered);
    }
    EXPECT_GT(coherent_gain, max_other);
}

TEST(PredictiveEnsemble, SelectsDiverseMembers)
{
    const hw::Device device = hw::Device::melbourne(2);
    EnsembleConfig config;
    config.size = 4;
    const EnsembleBuilder builder(device, config);
    const auto bench = benchmarks::greycode();
    const auto predictive =
        builder.buildPredictive(bench.circuit, 10);
    ASSERT_EQ(predictive.size(), 4u);
    // Best-ESP member is always kept first.
    const auto top = builder.candidates(bench.circuit).front();
    EXPECT_EQ(predictive.front().initialMap, top.initialMap);
    // All members distinct.
    for (std::size_t i = 0; i < predictive.size(); ++i) {
        for (std::size_t j = i + 1; j < predictive.size(); ++j) {
            EXPECT_NE(predictive[i].initialMap,
                      predictive[j].initialMap);
        }
    }
}

TEST(PredictiveEnsemble, Validates)
{
    const hw::Device device = hw::Device::melbourne(2);
    const EnsembleBuilder builder(device);
    EXPECT_THROW(
        builder.buildPredictive(benchmarks::greycode().circuit, 1),
        UserError);
}

} // namespace
} // namespace qedm::core
