/**
 * @file
 * Randomized property tests (seeded, deterministic): random circuits
 * exercise algebraic invariants that example-based tests cannot cover
 * exhaustively.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/qasm_parser.hpp"
#include "circuit/unitary.hpp"
#include "common/rng.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"
#include "stats/metrics.hpp"
#include "transpile/placer.hpp"
#include "transpile/router.hpp"
#include "transpile/twirl.hpp"

namespace qedm {
namespace {

using circuit::Circuit;
using circuit::OpKind;

/** A random unitary circuit on n qubits with g gates. */
Circuit
randomUnitaryCircuit(int n, int g, Rng &rng)
{
    Circuit c(n, n);
    static const OpKind one_q[] = {OpKind::X, OpKind::Y, OpKind::Z,
                                   OpKind::H, OpKind::S, OpKind::T,
                                   OpKind::Sdg, OpKind::Tdg};
    for (int i = 0; i < g; ++i) {
        const int pick = static_cast<int>(rng.uniformInt(11));
        if (pick < 8) {
            c.append(circuit::Gate{
                one_q[pick],
                {static_cast<int>(rng.uniformInt(n))}, {}, -1});
        } else if (pick == 8) {
            c.rz(rng.uniform(-3.0, 3.0),
                 static_cast<int>(rng.uniformInt(n)));
        } else {
            int a = static_cast<int>(rng.uniformInt(n));
            int b = static_cast<int>(rng.uniformInt(n));
            if (a == b)
                b = (b + 1) % n;
            if (pick == 9)
                c.cx(a, b);
            else
                c.cz(a, b);
        }
    }
    return c;
}

class RandomCircuitTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomCircuitTest, StateVectorMatchesUnitaryColumn)
{
    Rng rng(1000 + GetParam());
    const Circuit c = randomUnitaryCircuit(4, 25, rng);
    const auto u = circuit::circuitUnitary(c);
    sim::StateVector sv(4);
    for (const auto &g : c.gates())
        sv.applyGate(g.kind, g.qubits, g.params);
    // |psi> must equal the unitary's first column.
    for (std::size_t i = 0; i < sv.dim(); ++i) {
        EXPECT_NEAR(std::abs(sv.amplitude(i) - u.at(i, 0)), 0.0,
                    1e-10)
            << "basis " << i;
    }
    EXPECT_TRUE(u.isUnitary(1e-9));
}

TEST_P(RandomCircuitTest, TwirlPreservesRandomCircuits)
{
    Rng rng(2000 + GetParam());
    const Circuit c = randomUnitaryCircuit(3, 20, rng);
    const auto original = circuit::circuitUnitary(c);
    const auto twirled =
        circuit::circuitUnitary(transpile::pauliTwirl(c, rng));
    EXPECT_NEAR(twirled.distanceUpToGlobalPhase(original), 0.0, 1e-9);
}

TEST_P(RandomCircuitTest, QasmRoundTripOnRandomCircuits)
{
    Rng rng(3000 + GetParam());
    Circuit c = randomUnitaryCircuit(4, 15, rng);
    for (int q = 0; q < 4; ++q)
        c.measure(q, q);
    const std::string once = c.toQasm();
    EXPECT_EQ(circuit::parseQasm(once).toQasm(), once);
}

TEST_P(RandomCircuitTest, RoutingPreservesRandomCircuitSemantics)
{
    Rng rng(4000 + GetParam());
    Circuit c = randomUnitaryCircuit(4, 18, rng);
    for (int q = 0; q < 4; ++q)
        c.measure(q, q);
    const hw::Device device = hw::Device::idealMelbourne();
    // Random scattered placement.
    std::vector<int> placement;
    std::vector<int> pool{0, 2, 5, 7, 9, 11, 13};
    for (int i = 0; i < 4; ++i) {
        const std::size_t pick = rng.uniformInt(pool.size());
        placement.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<long>(pick));
    }
    const transpile::Router router(device);
    const auto routed = router.route(c, placement);
    const auto expect = sim::idealDistribution(c);
    const auto got = sim::idealDistribution(routed.physical);
    EXPECT_LT(stats::totalVariation(expect, got), 1e-9);
}

TEST_P(RandomCircuitTest, ExactDistributionIsValidProbability)
{
    Rng rng(5000 + GetParam());
    const hw::Device device =
        hw::Device::melbourne(7 + static_cast<std::uint64_t>(
                                      GetParam()));
    Circuit c(14, 3);
    // Random 3-qubit program on the coupled chain 1 - 2 - 3.
    const std::pair<int, int> coupled[] = {{1, 2}, {2, 3}};
    const int qs[3] = {1, 2, 3};
    for (int i = 0; i < 12; ++i) {
        const int pick = static_cast<int>(rng.uniformInt(3));
        if (pick == 0) {
            c.h(qs[rng.uniformInt(3)]);
        } else if (pick == 1) {
            c.rz(rng.uniform(-2.0, 2.0), qs[rng.uniformInt(3)]);
        } else {
            const auto [a, b] = coupled[rng.uniformInt(2)];
            c.cx(a, b);
        }
    }
    c.measure(1, 0).measure(2, 1).measure(3, 2);
    const sim::Executor exec(device);
    const auto dist = exec.exactDistribution(c);
    EXPECT_TRUE(dist.isNormalized(1e-6));
    for (Outcome o = 0; o < 8; ++o)
        EXPECT_GE(dist.prob(o), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitTest,
                         ::testing::Range(0, 10));

} // namespace
} // namespace qedm
