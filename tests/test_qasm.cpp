/**
 * @file
 * Unit tests for the OpenQASM-2 subset parser, including exact
 * round-trips through Circuit::toQasm().
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "circuit/qasm_parser.hpp"
#include "circuit/unitary.hpp"
#include "common/error.hpp"
#include "sim/executor.hpp"

namespace qedm::circuit {
namespace {

TEST(QasmParser, MinimalProgram)
{
    const Circuit c = parseQasm(
        "OPENQASM 2.0;\n"
        "include \"qelib1.inc\";\n"
        "qreg q[2];\n"
        "creg c[2];\n"
        "h q[0];\n"
        "cx q[0],q[1];\n"
        "measure q[0] -> c[0];\n"
        "measure q[1] -> c[1];\n");
    EXPECT_EQ(c.numQubits(), 2);
    EXPECT_EQ(c.numClbits(), 2);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c.gates()[0].kind, OpKind::H);
    EXPECT_EQ(c.gates()[1].kind, OpKind::Cx);
    EXPECT_EQ(c.gates()[1].qubits, (std::vector{0, 1}));
    EXPECT_EQ(c.gates()[2].clbit, 0);
}

TEST(QasmParser, ParametrizedGates)
{
    const Circuit c = parseQasm(
        "qreg q[1];\n"
        "rz(0.5) q[0];\n"
        "rx(-1.25) q[0];\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c.gates()[0].params[0], 0.5);
    EXPECT_DOUBLE_EQ(c.gates()[1].params[0], -1.25);
}

TEST(QasmParser, CommentsAndWhitespace)
{
    const Circuit c = parseQasm(
        "// header comment\n"
        "qreg q[2];\n"
        "\n"
        "  h q[0];   // trailing comment\n"
        "barrier q;\n"
        "x q[1];\n");
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.gates()[1].kind, OpKind::Barrier);
}

TEST(QasmParser, ThreeQubitGates)
{
    const Circuit c = parseQasm(
        "qreg q[3];\n"
        "ccx q[0],q[1],q[2];\n"
        "cswap q[2],q[0],q[1];\n");
    EXPECT_EQ(c.gates()[0].kind, OpKind::Ccx);
    EXPECT_EQ(c.gates()[1].kind, OpKind::Cswap);
}

TEST(QasmParser, Errors)
{
    EXPECT_THROW(parseQasm(""), UserError);
    EXPECT_THROW(parseQasm("h q[0];\n"), UserError); // gate before qreg
    EXPECT_THROW(parseQasm("qreg q[2];\nh q[0]\n"), UserError); // no ;
    EXPECT_THROW(parseQasm("qreg q[2];\nfoo q[0];\n"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2];\ncx q[0],q[0];\n"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2];\nh q[5];\n"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2];\nqreg q[3];\n"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2];\nmeasure q[0];\n"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2];\nrz(abc) q[0];\n"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2];\nrz(0.5 q[0];\n"), UserError);
    EXPECT_THROW(parseQasm("qreg q[2];\nh x[0];\n"), UserError);
}

TEST(QasmParser, CregAfterGatesRejected)
{
    EXPECT_THROW(parseQasm("qreg q[2];\nh q[0];\ncreg c[2];\n"),
                 UserError);
}

// Round trip: every paper benchmark must survive
// toQasm -> parseQasm -> toQasm exactly.
class QasmRoundTripTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(QasmRoundTripTest, ExactTextRoundTrip)
{
    const auto bench = benchmarks::byName(GetParam());
    const std::string once = bench.circuit.toQasm();
    const Circuit parsed = parseQasm(once);
    EXPECT_EQ(parsed.toQasm(), once);
    EXPECT_EQ(parsed.numQubits(), bench.circuit.numQubits());
    EXPECT_EQ(parsed.size(), bench.circuit.size());
}

TEST_P(QasmRoundTripTest, SemanticsPreserved)
{
    const auto bench = benchmarks::byName(GetParam());
    const Circuit parsed = parseQasm(bench.circuit.toQasm());
    const auto dist = sim::idealDistribution(parsed);
    EXPECT_EQ(dist.mode(), bench.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, QasmRoundTripTest,
    ::testing::Values("greycode", "bv-6", "bv-7", "qaoa-5", "qaoa-6",
                      "qaoa-7", "fredkin", "adder", "decode-24"));

} // namespace
} // namespace qedm::circuit
