/**
 * @file
 * Tests for the resilience layer: deterministic fault injection,
 * retry-with-backoff, per-member deadlines, and the graceful
 * degradation policy in the EDM pipeline. The load-bearing properties
 * are (1) a seeded fault schedule replays bit-identically at any
 * --jobs value, including the fault log and DegradationReport, and
 * (2) the trial budget is preserved exactly when healthy survivors
 * absorb a failed member's share.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/edm.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "resilience/degradation.hpp"
#include "resilience/fault_injector.hpp"
#include "runtime/clock.hpp"
#include "runtime/retry.hpp"
#include "runtime/watchdog.hpp"
#include "sim/execution_tape.hpp"
#include "sim/executor.hpp"

namespace qedm {
namespace {

using core::EdmConfig;
using core::EdmPipeline;
using core::EdmResult;
using resilience::FaultConfig;
using resilience::FaultInjector;
using resilience::FaultKind;
using resilience::ResilienceConfig;

constexpr std::uint64_t kSeed = 7;

/** Run the bv-6 pipeline with @p resilience at @p jobs workers. */
EdmResult
runFaulted(const ResilienceConfig &resilience, int jobs,
           std::uint64_t total_shots = 4096,
           std::uint64_t shot_batch = 512)
{
    const hw::Device device = hw::Device::melbourne(2);
    EdmConfig config;
    config.totalShots = total_shots;
    config.shotBatch = shot_batch;
    config.jobs = jobs;
    config.resilience = resilience;
    const EdmPipeline pipeline(device, config);
    return pipeline.run(benchmarks::bv6().circuit, SeedSequence(kSeed));
}

bool
sameEvent(const resilience::FaultEvent &a,
          const resilience::FaultEvent &b)
{
    return a.kind == b.kind && a.member == b.member &&
           a.batch == b.batch && a.attempt == b.attempt;
}

void
expectSameReport(const resilience::DegradationReport &a,
                 const resilience::DegradationReport &b)
{
    EXPECT_EQ(a.trialsLost, b.trialsLost);
    EXPECT_EQ(a.trialsReassigned, b.trialsReassigned);
    EXPECT_EQ(a.retriesTotal, b.retriesTotal);
    ASSERT_EQ(a.faults.size(), b.faults.size());
    for (std::size_t i = 0; i < a.faults.size(); ++i)
        EXPECT_TRUE(sameEvent(a.faults[i], b.faults[i])) << "event " << i;
    ASSERT_EQ(a.members.size(), b.members.size());
    for (std::size_t i = 0; i < a.members.size(); ++i) {
        EXPECT_EQ(a.members[i].member, b.members[i].member);
        EXPECT_EQ(a.members[i].cause, b.members[i].cause);
        EXPECT_EQ(a.members[i].completedShots, b.members[i].completedShots);
        EXPECT_EQ(a.members[i].plannedShots, b.members[i].plannedShots);
        EXPECT_EQ(a.members[i].kept, b.members[i].kept);
        EXPECT_EQ(a.members[i].retries, b.members[i].retries);
    }
    EXPECT_EQ(a.toString(), b.toString());
}

// ---------------------------------------------------------------------
// splitShots: remainder distribution preserves the exact budget.

TEST(SplitShotsTest, DistributesRemainderToLowestMembers)
{
    EXPECT_EQ(EdmPipeline::splitShots(10, 4),
              (std::vector<std::uint64_t>{3, 3, 2, 2}));
    EXPECT_EQ(EdmPipeline::splitShots(16, 4),
              (std::vector<std::uint64_t>{4, 4, 4, 4}));
    EXPECT_EQ(EdmPipeline::splitShots(7, 3),
              (std::vector<std::uint64_t>{3, 2, 2}));
}

TEST(SplitShotsTest, BudgetPreservedForManySizes)
{
    for (std::uint64_t total : {5u, 97u, 1024u, 16384u, 16385u}) {
        for (std::size_t members : {1u, 2u, 3u, 4u, 7u}) {
            if (total < members)
                continue;
            const auto splits = EdmPipeline::splitShots(total, members);
            const std::uint64_t sum = std::accumulate(
                splits.begin(), splits.end(), std::uint64_t{0});
            EXPECT_EQ(sum, total) << total << "/" << members;
        }
    }
}

TEST(SplitShotsTest, DegenerateCaseGivesEveryMemberOneTrial)
{
    EXPECT_EQ(EdmPipeline::splitShots(2, 4),
              (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

// ---------------------------------------------------------------------
// Retry primitive.

TEST(RetryTest, SucceedsAfterTransientFailures)
{
    runtime::RetryPolicy policy;
    policy.maxAttempts = 4;
    int calls = 0;
    const auto outcome =
        runtime::retryWithBackoff(policy, [&](int attempt) {
            EXPECT_EQ(attempt, calls);
            ++calls;
            if (attempt < 2)
                throw runtime::TransientError("flaky");
        });
    EXPECT_TRUE(outcome.succeeded);
    EXPECT_EQ(outcome.attempts, 3);
    EXPECT_EQ(outcome.retries(), 2);
    EXPECT_EQ(calls, 3);
}

TEST(RetryTest, ExhaustionNeverThrows)
{
    runtime::RetryPolicy policy;
    policy.maxAttempts = 2;
    const auto outcome = runtime::retryWithBackoff(policy, [](int) {
        throw runtime::TransientError("always down");
    });
    EXPECT_FALSE(outcome.succeeded);
    EXPECT_EQ(outcome.attempts, 2);
    EXPECT_EQ(outcome.lastError, "always down");
}

TEST(RetryTest, PermanentErrorsPropagate)
{
    runtime::RetryPolicy policy;
    EXPECT_THROW(runtime::retryWithBackoff(
                     policy, [](int) { throw UserError("bad input"); }),
                 UserError);
}

TEST(RetryTest, BackoffScheduleIsDeterministic)
{
    runtime::RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.backoffBaseMs = 0.0; // schedule computed, never slept
    const auto outcome = runtime::retryWithBackoff(policy, [](int) {
        throw runtime::TransientError("down");
    });
    EXPECT_DOUBLE_EQ(outcome.totalBackoffMs, 0.0);
}

TEST(RetryTest, BackoffSleepsOnTheInjectedClock)
{
    // 10ms, 20ms, 40ms of backoff between four failing attempts, all
    // of it virtual: the manual clock advances, no real time passes.
    const runtime::ManualClock clock;
    runtime::RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.backoffBaseMs = 10.0;
    const auto outcome = runtime::retryWithBackoff(
        policy, [](int) { throw runtime::TransientError("down"); },
        clock, SeedSequence(0));
    EXPECT_FALSE(outcome.succeeded);
    EXPECT_DOUBLE_EQ(outcome.totalBackoffMs, 70.0);
    EXPECT_DOUBLE_EQ(clock.nowMs(), 70.0);
}

TEST(RetryTest, JitterIsAPureFunctionOfTheStream)
{
    const runtime::ManualClock clock;
    runtime::RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.backoffBaseMs = 10.0;
    policy.jitterFraction = 0.5;

    const auto run = [&](std::uint64_t seed) {
        return runtime::retryWithBackoff(
            policy,
            [](int) { throw runtime::TransientError("down"); }, clock,
            SeedSequence(seed));
    };
    const auto a = run(11);
    const auto b = run(11);
    const auto c = run(12);

    // Same stream: the same schedule, bit for bit. Different stream:
    // a different one (with overwhelming probability), but always
    // inside the +/-50% envelope of the un-jittered 150ms total.
    EXPECT_EQ(a.totalBackoffMs, b.totalBackoffMs);
    EXPECT_NE(a.totalBackoffMs, c.totalBackoffMs);
    for (const auto &o : {a, b, c}) {
        EXPECT_GE(o.totalBackoffMs, 75.0);
        EXPECT_LE(o.totalBackoffMs, 225.0);
    }
}

TEST(RetryTest, ZeroJitterDrawsNothingFromTheStream)
{
    // jitterFraction == 0 must leave legacy schedules untouched no
    // matter what stream is handed in.
    const runtime::ManualClock clock;
    runtime::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.backoffBaseMs = 4.0;
    const auto a = runtime::retryWithBackoff(
        policy, [](int) { throw runtime::TransientError("down"); },
        clock, SeedSequence(1));
    const auto b = runtime::retryWithBackoff(
        policy, [](int) { throw runtime::TransientError("down"); },
        clock, SeedSequence(999));
    EXPECT_DOUBLE_EQ(a.totalBackoffMs, 12.0);
    EXPECT_DOUBLE_EQ(b.totalBackoffMs, 12.0);
}

TEST(RetryTest, RejectsInvalidPolicies)
{
    const runtime::ManualClock clock;
    runtime::RetryPolicy bad;
    bad.jitterFraction = 1.5;
    EXPECT_THROW(runtime::retryWithBackoff(
                     bad, [](int) {}, clock, SeedSequence(0)),
                 Error);
}

// ---------------------------------------------------------------------
// Watchdog: wall-clock budget bookkeeping on an injectable clock.

TEST(WatchdogTest, FiresOnlyPastTheBudget)
{
    const runtime::ManualClock clock;
    const runtime::Watchdog watchdog(clock, 100.0, 2);
    EXPECT_FALSE(watchdog.expired(0));
    watchdog.charge(0, 100.0); // exactly on budget: not expired yet
    EXPECT_FALSE(watchdog.expired(0));
    watchdog.charge(0, 0.5);
    EXPECT_TRUE(watchdog.expired(0));
    EXPECT_DOUBLE_EQ(watchdog.spentMs(0), 100.5);

    // Budgets are per member: member 1 is untouched.
    EXPECT_FALSE(watchdog.expired(1));
    EXPECT_DOUBLE_EQ(watchdog.spentMs(1), 0.0);
}

TEST(WatchdogTest, ChargesAccumulate)
{
    const runtime::ManualClock clock;
    const runtime::Watchdog watchdog(clock, 50.0, 1);
    for (int i = 0; i < 5; ++i)
        watchdog.charge(0, 10.0);
    EXPECT_FALSE(watchdog.expired(0));
    watchdog.charge(0, 10.0);
    EXPECT_TRUE(watchdog.expired(0));
    EXPECT_DOUBLE_EQ(watchdog.spentMs(0), 60.0);
}

// ---------------------------------------------------------------------
// FaultInjector: decisions are pure functions of the seed tree.

TEST(FaultInjectorTest, PlansAndTransientsReplayExactly)
{
    FaultConfig faults;
    faults.dropoutProb = 0.5;
    faults.stalenessProb = 0.5;
    faults.slowProb = 0.5;
    faults.transientProb = 0.3;
    const FaultInjector a(faults, SeedSequence(11));
    const FaultInjector b(faults, SeedSequence(11));
    for (std::size_t m = 0; m < 6; ++m) {
        const auto pa = a.memberPlan(m, 1024);
        const auto pb = b.memberPlan(m, 1024);
        EXPECT_EQ(pa.dropsOut, pb.dropsOut);
        EXPECT_EQ(pa.dropoutTrial, pb.dropoutTrial);
        EXPECT_EQ(pa.stale, pb.stale);
        EXPECT_EQ(pa.staleSeed, pb.staleSeed);
        EXPECT_EQ(pa.slow, pb.slow);
        for (std::uint64_t batch = 0; batch < 4; ++batch)
            for (int attempt = 0; attempt < 3; ++attempt)
                EXPECT_EQ(a.transientFails(m, batch, attempt),
                          b.transientFails(m, batch, attempt));
    }
}

TEST(FaultInjectorTest, ForcedDropoutAlwaysFires)
{
    FaultConfig faults;
    faults.forcedDropouts = {2};
    const FaultInjector injector(faults, SeedSequence(3));
    EXPECT_TRUE(injector.memberPlan(2, 512).dropsOut);
    EXPECT_LT(injector.memberPlan(2, 512).dropoutTrial, 512u);
    EXPECT_FALSE(injector.memberPlan(0, 512).dropsOut);
    EXPECT_TRUE(faults.any());
}

TEST(FaultInjectorTest, SlowMembersStretchVirtualTime)
{
    FaultConfig faults;
    faults.slowProb = 1.0;
    faults.slowFactor = 16.0;
    faults.batchMsPerShot = 0.01;
    const FaultInjector injector(faults, SeedSequence(3));
    resilience::MemberFaultPlan slow;
    slow.slow = true;
    resilience::MemberFaultPlan healthy;
    EXPECT_DOUBLE_EQ(injector.virtualBatchMs(healthy, 100), 1.0);
    EXPECT_DOUBLE_EQ(injector.virtualBatchMs(slow, 100), 16.0);
}

TEST(FaultInjectorTest, RejectsInvalidConfig)
{
    FaultConfig faults;
    faults.dropoutProb = 1.5;
    EXPECT_THROW(FaultInjector(faults, SeedSequence(1)), UserError);
    FaultConfig slow;
    slow.slowFactor = 0.5;
    EXPECT_THROW(FaultInjector(slow, SeedSequence(1)), UserError);
}

// ---------------------------------------------------------------------
// Executor trial gate (the mid-batch dropout hook).

TEST(ExecutorGateTest, GateTruncatesTrialCount)
{
    const hw::Device device = hw::Device::melbourne(2);
    const auto program =
        core::EnsembleBuilder(device).build(benchmarks::bv6().circuit)
            .front();
    const auto tape = sim::ExecutionTape::build(device, program.physical);
    const sim::Executor executor(device);
    Rng rng(9);
    const auto counts = executor.run(
        tape, 100, rng, [](std::uint64_t trial) { return trial < 5; });
    EXPECT_EQ(counts.total(), 5u);
}

TEST(ExecutorGateTest, AlwaysTrueGateMatchesGateFreePath)
{
    const hw::Device device = hw::Device::melbourne(2);
    const auto program =
        core::EnsembleBuilder(device).build(benchmarks::bv6().circuit)
            .front();
    const auto tape = sim::ExecutionTape::build(device, program.physical);
    const sim::Executor executor(device);
    Rng a(9), b(9);
    const auto plain = executor.run(tape, 64, a);
    const auto gated =
        executor.run(tape, 64, b, [](std::uint64_t) { return true; });
    EXPECT_EQ(plain.entries(), gated.entries());
}

// ---------------------------------------------------------------------
// Staleness perturbation.

TEST(StalenessTest, StaleJumpIsPessimisticAndDeterministic)
{
    const hw::Device fresh = hw::Device::melbourne(2);
    Rng a(5), b(5);
    const hw::Device stale1 = fresh.withStaleCalibration(a, 0.5);
    const hw::Device stale2 = fresh.withStaleCalibration(b, 0.5);
    EXPECT_EQ(stale1.calibration().meanCxError(),
              stale2.calibration().meanCxError());
    // One-sided: stale tables are never better than fresh ones.
    EXPECT_GE(stale1.calibration().meanCxError(),
              fresh.calibration().meanCxError());
}

// ---------------------------------------------------------------------
// Pipeline integration: determinism across jobs.

TEST(ResilientPipelineTest, FaultedRunBitIdenticalAcrossJobs)
{
    ResilienceConfig resilience;
    resilience.faults.dropoutProb = 0.4;
    resilience.faults.transientProb = 0.2;
    resilience.faults.stalenessProb = 0.3;
    resilience.retryMax = 1;

    const EdmResult sequential = runFaulted(resilience, 1);
    const EdmResult parallel = runFaulted(resilience, 4);

    ASSERT_EQ(sequential.members.size(), parallel.members.size());
    for (std::size_t m = 0; m < sequential.members.size(); ++m) {
        EXPECT_EQ(sequential.members[m].failed,
                  parallel.members[m].failed);
        EXPECT_EQ(sequential.members[m].shots,
                  parallel.members[m].shots);
        EXPECT_EQ(sequential.members[m].output.probabilities(),
                  parallel.members[m].output.probabilities())
            << "member " << m;
    }
    EXPECT_EQ(sequential.edm.probabilities(),
              parallel.edm.probabilities());
    EXPECT_EQ(sequential.wedm.probabilities(),
              parallel.wedm.probabilities());
    EXPECT_EQ(sequential.wedmWeights, parallel.wedmWeights);
    expectSameReport(sequential.degradation, parallel.degradation);
}

TEST(ResilientPipelineTest, DisabledFaultsMatchOriginalPath)
{
    // resilience inactive -> bit-identical to a config-free run.
    const EdmResult plain = runFaulted(ResilienceConfig{}, 1);
    const EdmResult threaded = runFaulted(ResilienceConfig{}, 4);
    EXPECT_FALSE(plain.degradation.degraded());
    EXPECT_TRUE(plain.degradation.faults.empty());
    EXPECT_EQ(plain.edm.probabilities(), threaded.edm.probabilities());
    for (const auto &member : plain.members) {
        EXPECT_FALSE(member.failed);
        EXPECT_EQ(member.shots, 1024u);
    }
}

// ---------------------------------------------------------------------
// Degradation policy.

TEST(ResilientPipelineTest, SurvivorsAbsorbForcedFailure)
{
    // K-1 survivors: member 1 is forced out and its partial trials are
    // dropped by a high keep floor; the other members absorb the lost
    // budget exactly.
    ResilienceConfig resilience;
    resilience.faults.forcedDropouts = {1};
    resilience.minTrialsPerMember = 5000; // > any member share

    const EdmResult result = runFaulted(resilience, 2);
    ASSERT_EQ(result.members.size(), 4u);
    EXPECT_TRUE(result.members[1].failed);
    EXPECT_EQ(result.members[1].shots, 0u);
    EXPECT_EQ(result.wedmWeights[1], 0.0);

    std::uint64_t merged = 0;
    double weight_sum = 0.0;
    for (std::size_t m = 0; m < result.members.size(); ++m) {
        if (m == 1)
            continue;
        EXPECT_FALSE(result.members[m].failed);
        merged += result.members[m].shots;
        weight_sum += result.wedmWeights[m];
    }
    // Exact budget preservation: survivors absorbed member 1's share.
    EXPECT_EQ(merged, 4096u);
    EXPECT_NEAR(weight_sum, 1.0, 1e-9);

    ASSERT_EQ(result.degradation.members.size(), 1u);
    EXPECT_EQ(result.degradation.members[0].member, 1u);
    EXPECT_EQ(result.degradation.members[0].cause,
              FaultKind::QubitDropout);
    EXPECT_FALSE(result.degradation.members[0].kept);
    EXPECT_EQ(result.degradation.trialsLost, 0u);
    EXPECT_GT(result.degradation.trialsReassigned, 0u);

    // The merged answers stay usable: IST/PST are computable from the
    // survivor-only merge.
    EXPECT_TRUE(result.edm.isNormalized());
    EXPECT_TRUE(result.wedm.isNormalized());
    EXPECT_NE(result.bestMemberByPst(benchmarks::bv6().expected), 1u);
}

TEST(ResilientPipelineTest, PartialTrialsKeptAboveFloor)
{
    ResilienceConfig resilience;
    resilience.faults.forcedDropouts = {1};
    resilience.minTrialsPerMember = 1;

    const EdmResult result = runFaulted(resilience, 1);
    ASSERT_EQ(result.members.size(), 4u);
    // The member is degraded but its completed trials merge.
    EXPECT_FALSE(result.members[1].failed);
    EXPECT_GT(result.members[1].shots, 0u);
    EXPECT_LT(result.members[1].shots, 1024u);
    EXPECT_GT(result.wedmWeights[1], 0.0);
    ASSERT_EQ(result.degradation.members.size(), 1u);
    EXPECT_TRUE(result.degradation.members[0].kept);

    // Budget preserved: kept partial + survivor absorption == total.
    std::uint64_t merged = 0;
    for (const auto &member : result.members)
        merged += member.shots;
    EXPECT_EQ(merged, 4096u);
}

TEST(ResilientPipelineTest, AllMembersFailedThrowsStructuredError)
{
    ResilienceConfig resilience;
    resilience.faults.forcedDropouts = {0, 1, 2, 3};
    resilience.minTrialsPerMember = 5000; // nothing clears the floor
    try {
        runFaulted(resilience, 1);
        FAIL() << "total ensemble loss not surfaced";
    } catch (const resilience::EnsembleFailedError &err) {
        EXPECT_EQ(err.totalMembers(), 4u);
        EXPECT_EQ(err.failedMembers(), 4u);
        EXPECT_NE(std::string(err.what()).find("no distribution"),
                  std::string::npos);
    }
}

TEST(ResilientPipelineTest, DeadlineAbandonsSlowMembers)
{
    // Every member is slow; the virtual-time deadline admits only the
    // first of its two batches, so each keeps exactly half its share
    // and there are no healthy survivors to absorb the rest.
    ResilienceConfig resilience;
    resilience.faults.slowProb = 1.0;
    resilience.faults.slowFactor = 64.0;
    resilience.faults.batchMsPerShot = 0.01;
    resilience.memberDeadlineMs = 400.0; // one 512-shot slow batch fits

    const EdmResult result = runFaulted(resilience, 2);
    ASSERT_EQ(result.members.size(), 4u);
    ASSERT_EQ(result.degradation.members.size(), 4u);
    for (const auto &deg : result.degradation.members) {
        EXPECT_EQ(deg.cause, FaultKind::DeadlineAbandoned);
        EXPECT_TRUE(deg.kept);
        EXPECT_EQ(deg.completedShots, 512u);
        EXPECT_EQ(deg.plannedShots, 1024u);
    }
    EXPECT_EQ(result.degradation.trialsLost, 4u * 512u);
    EXPECT_EQ(result.degradation.trialsReassigned, 0u);
}

TEST(ResilientPipelineTest, RetryExhaustionAppearsInReport)
{
    ResilienceConfig resilience;
    resilience.faults.transientProb = 0.5;
    resilience.retryMax = 0; // single attempt per batch

    const EdmResult result = runFaulted(resilience, 1);
    bool saw_exhaustion = false;
    bool saw_transient = false;
    for (const auto &event : result.degradation.faults) {
        saw_exhaustion |= event.kind == FaultKind::RetryExhausted;
        saw_transient |=
            event.kind == FaultKind::TransientTrialFailure;
    }
    EXPECT_TRUE(saw_transient);
    EXPECT_TRUE(saw_exhaustion);
    ASSERT_FALSE(result.degradation.members.empty());
    bool exhausted_member = false;
    for (const auto &deg : result.degradation.members)
        exhausted_member |= deg.cause == FaultKind::RetryExhausted;
    EXPECT_TRUE(exhausted_member);
    EXPECT_TRUE(result.degradation.degraded());
}

TEST(ResilientPipelineTest, StalenessAloneLosesNoTrials)
{
    ResilienceConfig resilience;
    resilience.faults.stalenessProb = 1.0;
    resilience.faults.stalenessSeverity = 1.0;

    const EdmResult stale = runFaulted(resilience, 1);
    const EdmResult fresh = runFaulted(ResilienceConfig{}, 1);
    // No trials lost, nothing dropped — but every member executed on a
    // perturbed calibration, so the fault log records it and the
    // distributions differ from the fresh run.
    EXPECT_FALSE(stale.degradation.degraded());
    std::size_t stale_events = 0;
    for (const auto &event : stale.degradation.faults)
        stale_events +=
            event.kind == FaultKind::CalibrationStaleness ? 1 : 0;
    EXPECT_EQ(stale_events, stale.members.size());
    for (const auto &member : stale.members)
        EXPECT_EQ(member.shots, 1024u);
    EXPECT_NE(stale.edm.probabilities(), fresh.edm.probabilities());
}

TEST(ResilientPipelineTest, ExperimentThreadsReportThrough)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::ExperimentConfig config;
    config.rounds = 2;
    config.totalShots = 1024;
    config.resilience.faults.forcedDropouts = {1};
    config.resilience.minTrialsPerMember = 1;
    const auto summary = core::runExperiment(
        device, benchmarks::bv6(), config, kSeed);
    EXPECT_EQ(summary.degradedRounds, 2u);
    EXPECT_GT(summary.rounds[0].degradation.members.size(), 0u);
    EXPECT_EQ(summary.trialsLost, 0u);
    EXPECT_GT(summary.trialsReassigned, 0u);
}

// ---------------------------------------------------------------------
// Fault-aware ensemble sizing.

TEST(FaultAwareSizingTest, DropoutPredictionOverProvisionsK)
{
    // Expected dropout p = 0.25 on K = 4: the builder must provision
    // ceil(4 / 0.75) = 6 members so the expected surviving ensemble
    // still has 4.
    const hw::Device device = hw::Device::melbourne(2);
    core::EnsembleConfig config;
    config.expectedDropoutProb = 0.25;
    const core::EnsembleBuilder builder(device, config);
    const auto members = builder.build(benchmarks::bv6().circuit);
    EXPECT_EQ(members.size(), 6u);
}

TEST(FaultAwareSizingTest, PlannedDropoutsAddSlots)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EnsembleConfig config;
    config.plannedDropouts = 2;
    const core::EnsembleBuilder builder(device, config);
    const auto members = builder.build(benchmarks::bv6().circuit);
    EXPECT_EQ(members.size(), 6u); // 4 + 2 deterministic losses
}

TEST(FaultAwareSizingTest, NoFaultPlanKeepsK)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    EXPECT_EQ(builder.build(benchmarks::bv6().circuit).size(), 4u);
}

TEST(FaultAwareSizingTest, PipelineForwardsDropoutPrediction)
{
    // --faults dropout=0.25 through the pipeline: the run carries 6
    // members, so even after expected losses the surviving ensemble
    // averages K = 4. Forced --fail-member injections must NOT
    // over-provision (they exist to watch a member fail).
    ResilienceConfig predicted;
    predicted.faults.dropoutProb = 0.25;
    predicted.minTrialsPerMember = 1;
    const EdmResult result = runFaulted(predicted, 1);
    EXPECT_EQ(result.members.size(), 6u);

    ResilienceConfig forced;
    forced.faults.forcedDropouts = {1};
    forced.minTrialsPerMember = 1;
    const EdmResult forced_result = runFaulted(forced, 1);
    EXPECT_EQ(forced_result.members.size(), 4u);
}

TEST(FaultAwareSizingTest, RejectsInvalidSizingConfig)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EnsembleConfig bad_prob;
    bad_prob.expectedDropoutProb = 1.0;
    EXPECT_THROW(core::EnsembleBuilder(device, bad_prob), UserError);
    core::EnsembleConfig bad_planned;
    bad_planned.plannedDropouts = -1;
    EXPECT_THROW(core::EnsembleBuilder(device, bad_planned),
                 UserError);
}

TEST(DegradationReportTest, ToStringNamesMembersAndKinds)
{
    resilience::DegradationReport report;
    resilience::MemberDegradation deg;
    deg.member = 2;
    deg.cause = FaultKind::QubitDropout;
    deg.plannedShots = 1024;
    deg.completedShots = 300;
    deg.kept = true;
    report.members.push_back(deg);
    report.faults.push_back({FaultKind::QubitDropout, 2, 0, -1});
    report.trialsLost = 0;
    report.trialsReassigned = 724;
    const std::string text = report.toString();
    EXPECT_NE(text.find("member 2"), std::string::npos);
    EXPECT_NE(text.find("qubit-dropout"), std::string::npos);
    EXPECT_NE(text.find("300/1024"), std::string::npos);
    EXPECT_NE(text.find("kept partial"), std::string::npos);

    const resilience::DegradationReport healthy;
    EXPECT_NE(healthy.toString().find("all members healthy"),
              std::string::npos);
    EXPECT_EQ(healthy.droppedCount(), 0u);
}

} // namespace
} // namespace qedm
