/**
 * @file
 * Unit tests for qedm_sim: state-vector engine, Kraus channels,
 * density-matrix engine, and the noisy executor (including
 * trajectory-vs-exact cross-validation).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/benchmarks.hpp"
#include "circuit/unitary.hpp"
#include "common/error.hpp"
#include "hw/device.hpp"
#include "sim/channels.hpp"
#include "sim/density_matrix.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"
#include "stats/metrics.hpp"

namespace qedm::sim {
namespace {

using circuit::Circuit;
using circuit::OpKind;

TEST(StateVector, StartsInZero)
{
    const StateVector sv(3);
    EXPECT_EQ(sv.dim(), 8u);
    EXPECT_DOUBLE_EQ(sv.probability(0), 1.0);
    EXPECT_DOUBLE_EQ(sv.norm(), 1.0);
}

TEST(StateVector, HadamardGivesUniform)
{
    StateVector sv(1);
    sv.applyGate(OpKind::H, {0}, {});
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(1), 0.5, 1e-12);
}

TEST(StateVector, BellState)
{
    StateVector sv(2);
    sv.applyGate(OpKind::H, {0}, {});
    sv.applyGate(OpKind::Cx, {0, 1}, {});
    EXPECT_NEAR(sv.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(0b01), 0.0, 1e-12);
    EXPECT_NEAR(sv.probability(0b10), 0.0, 1e-12);
}

TEST(StateVector, GhzOnFiveQubits)
{
    StateVector sv(5);
    sv.applyGate(OpKind::H, {0}, {});
    for (int q = 0; q + 1 < 5; ++q)
        sv.applyGate(OpKind::Cx, {q, q + 1}, {});
    EXPECT_NEAR(sv.probability(0), 0.5, 1e-12);
    EXPECT_NEAR(sv.probability(31), 0.5, 1e-12);
}

TEST(StateVector, XFlipsBit)
{
    StateVector sv(2);
    sv.applyGate(OpKind::X, {1}, {});
    EXPECT_NEAR(sv.probability(0b10), 1.0, 1e-12);
}

TEST(StateVector, ResetRestoresZero)
{
    StateVector sv(2);
    sv.applyGate(OpKind::H, {0}, {});
    sv.reset();
    EXPECT_DOUBLE_EQ(sv.probability(0), 1.0);
}

TEST(StateVector, SampleMeasurementFollowsBornRule)
{
    StateVector sv(1);
    sv.applyGate(OpKind::Ry, {0}, {2.0 * std::asin(std::sqrt(0.3))});
    Rng rng(3);
    int ones = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ones += sv.sampleMeasurement(rng) == 1 ? 1 : 0;
    EXPECT_NEAR(ones / double(n), 0.3, 0.01);
}

TEST(StateVector, RejectsThreeQubitGates)
{
    StateVector sv(3);
    EXPECT_THROW(sv.applyGate(OpKind::Ccx, {0, 1, 2}, {}), UserError);
}

TEST(StateVector, KrausTrajectoryPreservesNorm)
{
    StateVector sv(2);
    sv.applyGate(OpKind::H, {0}, {});
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        sv.applyKraus1q(amplitudeDamping(0.2), 0, rng);
        EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
    }
}

TEST(StateVector, KrausTrajectoryMatchesChannelStatistics)
{
    // Bit-flip channel on |0>: over many trajectories, P(1) -> p.
    Rng rng(7);
    const double p = 0.25;
    int flipped = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        StateVector sv(1);
        sv.applyKraus1q(bitFlip(p), 0, rng);
        flipped += sv.probability(1) > 0.5 ? 1 : 0;
    }
    EXPECT_NEAR(flipped / double(n), p, 0.01);
}

// All standard channels must be trace preserving for any parameter.
class ChannelTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ChannelTest, TracePreserving)
{
    const double p = GetParam();
    EXPECT_TRUE(isTracePreserving(depolarizing1q(p)));
    EXPECT_TRUE(isTracePreserving(bitFlip(p)));
    EXPECT_TRUE(isTracePreserving(phaseFlip(p)));
    EXPECT_TRUE(isTracePreserving(amplitudeDamping(p)));
    EXPECT_TRUE(isTracePreserving(phaseDamping(p)));
}

INSTANTIATE_TEST_SUITE_P(Probabilities, ChannelTest,
                         ::testing::Values(0.0, 0.01, 0.1, 0.5, 0.9,
                                           1.0));

TEST(Channels, ThermalRelaxationComposition)
{
    const auto sets = thermalRelaxation(1000.0, 50.0, 30.0);
    ASSERT_GE(sets.size(), 1u);
    for (const auto &k : sets)
        EXPECT_TRUE(isTracePreserving(k));
    // Zero duration -> no channels.
    EXPECT_TRUE(thermalRelaxation(0.0, 50.0, 30.0).empty());
    EXPECT_THROW(thermalRelaxation(10.0, 0.0, 30.0), UserError);
}

TEST(Channels, TwoQubitPauliEnumeration)
{
    // 15 distinct non-identity pairs.
    EXPECT_THROW(twoQubitPauli(15), UserError);
    EXPECT_THROW(twoQubitPauli(-1), UserError);
    const auto [a0, b0] = twoQubitPauli(0);
    // First entry is (I, X).
    EXPECT_NEAR(std::abs(a0[0] - circuit::Complex(1.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(b0[1] - circuit::Complex(1.0)), 0.0, 1e-12);
}

TEST(DensityMatrix, PureEvolutionMatchesStateVector)
{
    DensityMatrix rho(3);
    StateVector sv(3);
    const auto apply_both = [&](OpKind k, std::vector<int> q,
                                std::vector<double> p) {
        rho.applyGate(k, q, p);
        sv.applyGate(k, q, p);
    };
    apply_both(OpKind::H, {0}, {});
    apply_both(OpKind::Cx, {0, 1}, {});
    apply_both(OpKind::Ry, {2}, {0.7});
    apply_both(OpKind::Cz, {1, 2}, {});
    const auto pr = rho.probabilities();
    const auto ps = sv.probabilities();
    for (std::size_t i = 0; i < pr.size(); ++i)
        EXPECT_NEAR(pr[i], ps[i], 1e-10) << "basis " << i;
    EXPECT_NEAR(rho.purity(), 1.0, 1e-10);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, DepolarizingReducesPurity)
{
    DensityMatrix rho(1);
    rho.applyGate(OpKind::H, {0}, {});
    rho.applyKraus1q(depolarizing1q(0.3), 0);
    EXPECT_LT(rho.purity(), 1.0);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, FullDepolarizingGivesMaximallyMixed)
{
    DensityMatrix rho(1);
    rho.applyKraus1q(depolarizing1q(1.0), 0);
    // p = 1 depolarizing leaves I/2 plus residual coherence terms
    // zero; diagonal is 1/2 each... the standard convention maps rho
    // to (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z); for rho=|0><0|
    // this yields diag(1/3, 2/3).
    const auto p = rho.probabilities();
    EXPECT_NEAR(p[0], 1.0 / 3.0, 1e-10);
    EXPECT_NEAR(p[1], 2.0 / 3.0, 1e-10);
}

TEST(DensityMatrix, AmplitudeDampingDecaysExcitedState)
{
    DensityMatrix rho(1);
    rho.applyGate(OpKind::X, {0}, {});
    rho.applyKraus1q(amplitudeDamping(0.4), 0);
    const auto p = rho.probabilities();
    EXPECT_NEAR(p[1], 0.6, 1e-10);
    EXPECT_NEAR(p[0], 0.4, 1e-10);
}

TEST(DensityMatrix, TwoQubitDepolarizing)
{
    DensityMatrix rho(2);
    rho.applyDepolarizing2q(0.5, 0, 1);
    EXPECT_NEAR(rho.trace(), 1.0, 1e-10);
    EXPECT_LT(rho.purity(), 1.0);
    // p = 0 is the identity channel.
    DensityMatrix rho2(2);
    rho2.applyGate(OpKind::H, {0}, {});
    const double purity_before = rho2.purity();
    rho2.applyDepolarizing2q(0.0, 0, 1);
    EXPECT_NEAR(rho2.purity(), purity_before, 1e-12);
}

TEST(IdealDistribution, BellPairOverClassicalRegister)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    const auto d = idealDistribution(c);
    EXPECT_NEAR(d.prob(0b00), 0.5, 1e-12);
    EXPECT_NEAR(d.prob(0b11), 0.5, 1e-12);
}

TEST(IdealDistribution, MarginalizesUnmeasuredQubits)
{
    Circuit c(2, 1);
    c.h(1).x(0).measure(0, 0); // qubit 1 unmeasured
    const auto d = idealDistribution(c);
    EXPECT_NEAR(d.prob(1), 1.0, 1e-12);
}

TEST(IdealDistribution, ClbitPermutation)
{
    Circuit c(2, 2);
    c.x(0).measure(0, 1).measure(1, 0);
    const auto d = idealDistribution(c);
    EXPECT_NEAR(d.prob(0b10), 1.0, 1e-12);
}

TEST(IdealDistribution, RequiresMeasurement)
{
    Circuit c(1, 1);
    c.h(0);
    EXPECT_THROW(idealDistribution(c), UserError);
}

TEST(Executor, IdealDeviceReproducesIdealDistribution)
{
    const hw::Device device = hw::Device::idealMelbourne();
    const Executor exec(device);
    // A GHZ-like physical circuit on coupled qubits 0-1-2.
    Circuit c(14, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure(0, 0).measure(1, 1).measure(2, 2);
    Rng rng(11);
    const auto counts = exec.run(c, 40000, rng);
    const auto d = stats::Distribution::fromCounts(counts);
    EXPECT_NEAR(d.prob(0b000), 0.5, 0.01);
    EXPECT_NEAR(d.prob(0b111), 0.5, 0.01);
    EXPECT_NEAR(d.prob(0b010), 0.0, 1e-6);
}

TEST(Executor, RejectsTwoQubitGateOffTopology)
{
    const hw::Device device = hw::Device::idealMelbourne();
    const Executor exec(device);
    Circuit c(14, 2);
    c.cx(0, 5).measure(0, 0); // 0 and 5 are not coupled
    Rng rng(1);
    EXPECT_THROW(exec.run(c, 10, rng), UserError);
}

TEST(Executor, RejectsGateAfterMeasure)
{
    const hw::Device device = hw::Device::idealMelbourne();
    const Executor exec(device);
    Circuit c(14, 1);
    c.measure(0, 0).h(0);
    Rng rng(1);
    EXPECT_THROW(exec.run(c, 10, rng), UserError);
}

TEST(Executor, RejectsWrongRegisterSize)
{
    const hw::Device device = hw::Device::idealMelbourne();
    const Executor exec(device);
    Circuit c(5, 1);
    c.h(0).measure(0, 0);
    Rng rng(1);
    EXPECT_THROW(exec.run(c, 10, rng), UserError);
}

TEST(Executor, ReadoutConfusionFlipsBits)
{
    // Ideal gates but 20% readout error on qubit 0 (state 0 -> 1).
    hw::Device device = hw::Device::idealMelbourne();
    hw::Calibration cal = device.calibration();
    cal.qubit(0).readoutP01 = 0.2;
    device = device.withCalibration(cal);
    const Executor exec(device);
    Circuit c(14, 1);
    c.i(0).measure(0, 0);
    Rng rng(13);
    const auto counts = exec.run(c, 50000, rng);
    EXPECT_NEAR(counts.count(1) / 50000.0, 0.2, 0.01);
}

TEST(Executor, BiasedReadoutIsStateDependent)
{
    hw::Device device = hw::Device::idealMelbourne();
    hw::Calibration cal = device.calibration();
    cal.qubit(3).readoutP01 = 0.05;
    cal.qubit(3).readoutP10 = 0.30;
    device = device.withCalibration(cal);
    const Executor exec(device);
    Rng rng(17);

    Circuit zero(14, 1);
    zero.i(3).measure(3, 0);
    const auto c0 = exec.run(zero, 30000, rng);
    EXPECT_NEAR(c0.count(1) / 30000.0, 0.05, 0.01);

    Circuit one(14, 1);
    one.x(3).measure(3, 0);
    const auto c1 = exec.run(one, 30000, rng);
    EXPECT_NEAR(c1.count(0) / 30000.0, 0.30, 0.01);
}

TEST(Executor, TrajectoryMatchesExactDistribution)
{
    // Full correlated noise on: empirical trajectory histogram must
    // converge to the exact density-matrix distribution.
    const hw::Device device = hw::Device::melbourne(21);
    const Executor exec(device);
    Circuit c(14, 2);
    c.h(0).cx(0, 1).rz(0.4, 1).cx(1, 2).measure(0, 0).measure(1, 1);
    Rng rng(23);
    const auto exact = exec.exactDistribution(c);
    const auto empirical = stats::Distribution::fromCounts(
        exec.run(c, 200000, rng));
    double tv = 0.0;
    for (Outcome o = 0; o < 4; ++o)
        tv += std::abs(exact.prob(o) - empirical.prob(o));
    EXPECT_LT(0.5 * tv, 0.01)
        << "exact:\n" << exact.toString()
        << "empirical:\n" << empirical.toString();
}

TEST(Executor, ExactDistributionNormalized)
{
    const hw::Device device = hw::Device::melbourne(5);
    const Executor exec(device);
    Circuit c(14, 3);
    c.h(0).cx(0, 1).cx(1, 2).measure(0, 0).measure(1, 1).measure(2, 2);
    const auto d = exec.exactDistribution(c);
    EXPECT_TRUE(d.isNormalized(1e-9));
}

TEST(Executor, CorrelatedReadoutProducesJointFlips)
{
    // Build a device whose only noise is one correlated-readout pair
    // and verify double-flips dominate single-flips.
    hw::Device device = hw::Device::idealMelbourne();
    hw::NoiseSpec spec;
    spec.coherentScale = 0.0;
    spec.stochasticScale = 0.0;
    spec.enableDecoherence = false;
    spec.correlatedReadoutScale = 1.0;
    spec.correlatedReadoutMax = 0.2;
    Rng nrng(31);
    device = device.withNoise(hw::NoiseModel::sample(
        device.topology(), device.calibration(), spec, nrng));
    const Executor exec(device);
    Circuit c(14, 2);
    c.i(0).i(1).measure(0, 0).measure(1, 1);
    Rng rng(37);
    const auto counts = exec.run(c, 50000, rng);
    // Joint flips put mass on 11; independent-only noise would put
    // mass on 01/10 instead (readout is ideal here).
    EXPECT_GT(counts.count(0b11), 100u);
    EXPECT_EQ(counts.count(0b01), 0u);
    EXPECT_EQ(counts.count(0b10), 0u);
}

TEST(Executor, DeterministicFastPathMatchesSlowPath)
{
    // With stochastic noise disabled the executor evolves once; the
    // sampled histogram must match an ideal-device run gate-for-gate.
    hw::NoiseSpec spec;
    spec.coherentScale = 1.5;
    spec.stochasticScale = 0.0;
    spec.enableDecoherence = false;
    spec.correlatedReadoutScale = 0.0;
    const hw::Device device = hw::Device::melbourne(41, spec);
    const Executor exec(device);
    Circuit c(14, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    Rng rng(43);
    const auto counts = exec.run(c, 100000, rng);
    const auto exact = exec.exactDistribution(c);
    const auto empirical = stats::Distribution::fromCounts(counts);
    for (Outcome o = 0; o < 4; ++o)
        EXPECT_NEAR(empirical.prob(o), exact.prob(o), 0.01);
}

TEST(Executor, BenchmarksRunOnIdealDeviceGiveExpectedOutput)
{
    // Logical circuits that already fit the coupling map can run
    // unmapped on the ideal device when padded to 14 qubits.
    const auto bench = benchmarks::greycode();
    Circuit padded(14, bench.outputWidth);
    for (const auto &g : bench.circuit.gates())
        padded.append(g);
    const hw::Device device = hw::Device::idealMelbourne();
    const Executor exec(device);
    Rng rng(47);
    const auto counts = exec.run(padded, 1000, rng);
    EXPECT_EQ(counts.count(bench.expected), 1000u);
}

} // namespace
} // namespace qedm::sim
