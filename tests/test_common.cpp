/**
 * @file
 * Unit tests for qedm_common: bit utilities, RNG, error handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace qedm {
namespace {

TEST(Bits, GetSetFlip)
{
    Outcome v = 0;
    v = setBit(v, 3, 1);
    EXPECT_EQ(v, 8u);
    EXPECT_EQ(getBit(v, 3), 1);
    EXPECT_EQ(getBit(v, 2), 0);
    v = flipBit(v, 3);
    EXPECT_EQ(v, 0u);
    v = setBit(v, 0, 1);
    v = setBit(v, 0, 0);
    EXPECT_EQ(v, 0u);
}

TEST(Bits, PopcountAndHamming)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(0b110011), 4);
    EXPECT_EQ(hammingDistance(0b110011, 0b110011), 0);
    EXPECT_EQ(hammingDistance(0b110011, 0b010011), 1);
    EXPECT_EQ(hammingDistance(0, 0b1111), 4);
}

TEST(Bits, ToBitstringMsbFirst)
{
    EXPECT_EQ(toBitstring(0b110011, 6), "110011");
    EXPECT_EQ(toBitstring(1, 4), "0001");
    EXPECT_EQ(toBitstring(8, 4), "1000");
    EXPECT_EQ(toBitstring(0, 3), "000");
}

TEST(Bits, ParseBitstringRoundTrip)
{
    for (Outcome v : {0u, 1u, 5u, 63u, 37u}) {
        EXPECT_EQ(parseBitstring(toBitstring(v, 6)), v);
    }
    EXPECT_EQ(parseBitstring("1101011"), 0b1101011u);
}

TEST(Bits, ParseBitstringRejectsBadInput)
{
    EXPECT_THROW(parseBitstring(""), UserError);
    EXPECT_THROW(parseBitstring("10201"), UserError);
    EXPECT_THROW(parseBitstring(std::string(65, '1')), UserError);
}

TEST(Bits, ToBitstringRejectsBadWidth)
{
    EXPECT_THROW(toBitstring(0, 0), UserError);
    EXPECT_THROW(toBitstring(0, 65), UserError);
}

TEST(Bits, AllOutcomes)
{
    const auto all = allOutcomes(3);
    ASSERT_EQ(all.size(), 8u);
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], i);
    EXPECT_THROW(allOutcomes(21), UserError);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double min_v = 1.0, max_v = 0.0, sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        min_v = std::min(min_v, u);
        max_v = std::max(max_v, u);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
    EXPECT_LT(min_v, 0.01);
    EXPECT_GT(max_v, 0.99);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 3.0);
        ASSERT_GE(u, -2.0);
        ASSERT_LT(u, 3.0);
    }
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng rng(11);
    std::vector<int> hits(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits[rng.uniformInt(10)] += 1;
    for (int h : hits)
        EXPECT_NEAR(h, n / 10, 5 * std::sqrt(n / 10.0));
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    const int n = 100000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled)
{
    Rng rng(13);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights)
{
    Rng rng(19);
    const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
    std::vector<int> hits(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits[rng.discrete(w)] += 1;
    EXPECT_EQ(hits[2], 0);
    EXPECT_NEAR(hits[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(hits[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(hits[3] / double(n), 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsInvalidWeights)
{
    Rng rng(1);
    EXPECT_THROW(rng.discrete({0.0, 0.0}), UserError);
    EXPECT_THROW(rng.discrete({1.0, -0.5}), UserError);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(42);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Error, RequireThrowsUserError)
{
    EXPECT_THROW(QEDM_REQUIRE(false, "boom"), UserError);
    EXPECT_NO_THROW(QEDM_REQUIRE(true, "fine"));
}

TEST(Error, AssertThrowsInternalError)
{
    EXPECT_THROW(QEDM_ASSERT(false, "bug"), InternalError);
    EXPECT_NO_THROW(QEDM_ASSERT(true, "fine"));
}

TEST(Error, MessageContainsContext)
{
    try {
        QEDM_REQUIRE(1 == 2, "the message");
        FAIL() << "expected throw";
    } catch (const UserError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("the message"), std::string::npos);
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
    }
}

} // namespace
} // namespace qedm
