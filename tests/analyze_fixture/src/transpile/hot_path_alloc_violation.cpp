// Seeded hot-path-alloc violations: a src/transpile TU whose
// `// qedm:hot` function allocates on the per-node path. The
// `analyze_fixture` ctest case expects qedm_analyze to reject this
// tree. Never compiled; only scanned.

namespace analyze_fixture {

// qedm:hot
int
hotRecurse(int depth)
{
    std::vector<int> children;     // hot-path-alloc: per-node vector
    int *scratch = new int(depth); // hot-path-alloc (and naked-new)
    const int out = *scratch + static_cast<int>(children.size());
    delete scratch;
    return out;
}

// Allocation outside a marked function stays legal for this rule
// (plan/worker construction is exactly where buffers belong):
std::vector<int>
coldSetup(int n)
{
    return std::vector<int>(static_cast<unsigned long>(n), 0);
}

// qedm:hot
int
hotButClean(int a, int b)
{
    return a < b ? a : b;
}

} // namespace analyze_fixture
