// Seeded rng-in-kernel violations: a batched-kernel TU that names the
// Rng type and calls draw methods mid-walk. The `analyze_fixture`
// ctest case expects qedm_analyze to reject this tree. Never
// compiled; only scanned.

namespace analyze_fixture {

class Rng; // rng-in-kernel: the type has no business here

double
drawInsideKernel(Rng &rng)
{
    return 0.0; // the parameter above already fired
}

template <typename Plan>
double
memberDraws(Plan *plan, Plan &other)
{
    double acc = plan->uniform();   // rng-in-kernel
    acc += other.bernoulli(0.5);    // rng-in-kernel
    acc += plan->uniformInt(8);     // rng-in-kernel
    // A plain identifier spelled like a draw stays legal:
    const bool uniform = acc > 0.0;
    return uniform ? acc : -acc;
}

} // namespace analyze_fixture
