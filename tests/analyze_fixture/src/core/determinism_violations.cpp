// Seeded determinism violations for the analyzer self-test: the
// `analyze_fixture` ctest case runs qedm_analyze over
// tests/analyze_fixture and expects a nonzero exit with every
// determinism-family rule firing. Never compiled; only scanned.

#include <chrono>
#include <ctime>
#include <numeric>
#include <unordered_map>
#include <vector>

namespace analyze_fixture {

int
hashOrderLeak(const std::unordered_map<int, double> &weights)
{
    int sum = 0;
    for (const auto &[key, value] : weights) // unordered-iteration
        sum += key + static_cast<int>(value);
    return sum;
}

int
hiddenCallState()
{
    static int calls = 0; // local-static
    return ++calls;
}

double
unorderedEspSum(const std::vector<double> &terms)
{
    // float-accumulate: no canonical-order comment within reach
    // (this mention is too far above the call to count).
    double bias = 1.0;
    bias += 1.0;
    bias += 2.0;
    return std::accumulate(terms.begin(), terms.end(), 0.0);
}

unsigned
wallClockSeed()
{
    return static_cast<unsigned>(std::time(nullptr)); // time-seed
}

double
rawWallClockRead()
{
    // wall-clock: result-bearing code must read time through the
    // injectable runtime::Clock, never steady_clock directly.
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace analyze_fixture
