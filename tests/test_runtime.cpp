/**
 * @file
 * Tests for the qedm::runtime execution layer: ThreadPool mechanics,
 * JobScheduler policy, SeedSequence stream derivation, cache behavior,
 * and the headline determinism contract — pipeline and experiment
 * outputs are byte-identical at any --jobs value.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/edm.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/execution_tape.hpp"
#include "transpile/compile_cache.hpp"

namespace {

using namespace qedm;

TEST(ThreadPool, ConstructAndShutdownIdle)
{
    runtime::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    // Destructor joins without any work submitted.
}

TEST(ThreadPool, SubmitRunsTask)
{
    runtime::ThreadPool pool(2);
    std::atomic<int> hits{0};
    auto f1 = pool.submit([&] { hits.fetch_add(1); });
    auto f2 = pool.submit([&] { hits.fetch_add(1); });
    f1.wait();
    f2.wait();
    EXPECT_EQ(hits.load(), 2);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> hits{0};
    {
        runtime::ThreadPool pool(1);
        for (int i = 0; i < 64; ++i)
            pool.submit([&] { hits.fetch_add(1); });
    }
    EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    runtime::ThreadPool pool(4);
    std::vector<std::atomic<int>> seen(257);
    pool.parallelFor(seen.size(), [&](std::size_t i) {
        seen[i].fetch_add(1);
    });
    for (const auto &s : seen)
        EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    runtime::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // Pool is still usable after a failed loop.
    std::atomic<int> hits{0};
    pool.parallelFor(8, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 8);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    runtime::ThreadPool pool(2);
    std::atomic<int> hits{0};
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(4, [&](std::size_t) { hits.fetch_add(1); });
    });
    EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, RejectsNonPositiveThreadCount)
{
    EXPECT_THROW(runtime::ThreadPool(0), Error);
}

TEST(JobScheduler, SequentialModeHasNoPool)
{
    runtime::JobScheduler seq(1);
    EXPECT_FALSE(seq.parallel());
    EXPECT_EQ(seq.jobs(), 1);
    std::vector<int> order;
    seq.parallelFor(5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(JobScheduler, AutoResolvesHardwareConcurrency)
{
    runtime::JobScheduler any(0);
    EXPECT_GE(any.jobs(), 1);
}

TEST(JobScheduler, CopiesShareThePool)
{
    runtime::JobScheduler a(4);
    runtime::JobScheduler b = a; // NOLINT: copy intended
    EXPECT_TRUE(b.parallel());
    std::atomic<int> hits{0};
    b.parallelFor(16, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 16);
}

TEST(SeedSequence, ChildIsPureAndOrderIndependent)
{
    const SeedSequence root(42);
    const std::uint64_t ab = root.child(1).child(2).state();
    // Deriving unrelated children in between changes nothing.
    (void)root.child(7);
    (void)root.child(2).child(1);
    EXPECT_EQ(root.child(1).child(2).state(), ab);
    EXPECT_NE(root.child(2).child(1).state(), ab);
}

TEST(SeedSequence, SiblingStreamsDiffer)
{
    const SeedSequence root(7);
    std::set<std::uint64_t> states;
    for (std::uint64_t k = 0; k < 64; ++k)
        states.insert(root.child(k).state());
    EXPECT_EQ(states.size(), 64u);
    // Including from the root itself and from a different seed.
    EXPECT_NE(root.child(0).state(), root.state());
    EXPECT_NE(SeedSequence(8).state(), root.state());
}

TEST(SeedSequence, RngIsDeterministic)
{
    const SeedSequence node = SeedSequence(3).child(5);
    Rng a = node.rng();
    Rng b = node.rng();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(a(), b());
}

TEST(TapeCache, HitsOnRepeatMissesOnDrift)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto program = compiler.compile(benchmarks::bv6().circuit);

    sim::TapeCache cache;
    const auto t1 = cache.get(device, program.physical);
    const auto t2 = cache.get(device, program.physical);
    EXPECT_EQ(t1.get(), t2.get());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);

    Rng rng(9);
    const hw::Device drifted = device.driftedRound(rng, 0.2);
    EXPECT_NE(device.fingerprint(), drifted.fingerprint());
    const auto t3 = cache.get(drifted, program.physical);
    EXPECT_NE(t1.get(), t3.get());
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(CompileCache, HitsOnRepeatMissesOnDrift)
{
    const hw::Device device = hw::Device::melbourne(2);
    const auto logical = benchmarks::bv6().circuit;
    const transpile::Transpiler compiler(device);

    transpile::CompileCache cache;
    const auto p1 = cache.getOrCompile(compiler, logical);
    const auto p2 = cache.getOrCompile(compiler, logical);
    EXPECT_EQ(p1.get(), p2.get());
    EXPECT_EQ(cache.hits(), 1u);

    Rng rng(9);
    const hw::Device drifted = device.driftedRound(rng, 0.2);
    const transpile::Transpiler drifted_compiler(drifted);
    const auto p3 = cache.getOrCompile(drifted_compiler, logical);
    EXPECT_NE(p1.get(), p3.get());
    EXPECT_EQ(cache.misses(), 2u);
}

core::EdmResult
runPipelineAtJobs(int jobs)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EdmConfig config;
    config.totalShots = 4096;
    config.shotBatch = 512;
    config.jobs = jobs;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(11);
    return pipeline.run(benchmarks::bv6().circuit, rng);
}

TEST(RuntimeDeterminism, PipelineIdenticalAcrossJobs)
{
    const core::EdmResult seq = runPipelineAtJobs(1);
    const core::EdmResult par = runPipelineAtJobs(8);

    ASSERT_EQ(seq.members.size(), par.members.size());
    for (std::size_t i = 0; i < seq.members.size(); ++i) {
        EXPECT_EQ(seq.members[i].shots, par.members[i].shots);
        EXPECT_EQ(seq.members[i].output.probabilities(),
                  par.members[i].output.probabilities());
    }
    EXPECT_EQ(seq.edm.probabilities(), par.edm.probabilities());
    EXPECT_EQ(seq.wedm.probabilities(), par.wedm.probabilities());
    EXPECT_EQ(seq.wedmWeights, par.wedmWeights);
}

core::ExperimentSummary
runExperimentAtJobs(int jobs)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::ExperimentConfig config;
    config.rounds = 3;
    config.totalShots = 2048;
    config.jobs = jobs;
    return core::runExperiment(device, benchmarks::bv6(), config, 11);
}

TEST(RuntimeDeterminism, ExperimentIdenticalAcrossJobs)
{
    const auto seq = runExperimentAtJobs(1);
    const auto par = runExperimentAtJobs(8);

    ASSERT_EQ(seq.rounds.size(), par.rounds.size());
    for (std::size_t r = 0; r < seq.rounds.size(); ++r) {
        EXPECT_EQ(seq.rounds[r].edm.ist, par.rounds[r].edm.ist);
        EXPECT_EQ(seq.rounds[r].edm.pst, par.rounds[r].edm.pst);
        EXPECT_EQ(seq.rounds[r].wedm.ist, par.rounds[r].wedm.ist);
        EXPECT_EQ(seq.rounds[r].wedm.pst, par.rounds[r].wedm.pst);
        EXPECT_EQ(seq.rounds[r].baselineEst.ist,
                  par.rounds[r].baselineEst.ist);
        EXPECT_EQ(seq.rounds[r].baselinePost.ist,
                  par.rounds[r].baselinePost.ist);
    }
    EXPECT_EQ(seq.median.edm.ist, par.median.edm.ist);
    EXPECT_EQ(seq.median.wedm.ist, par.median.wedm.ist);
    EXPECT_EQ(seq.median.baselineEst.pst, par.median.baselineEst.pst);
    EXPECT_EQ(seq.median.baselinePost.pst, par.median.baselinePost.pst);
}

TEST(RuntimeDeterminism, ExplicitStreamMatchesRngEntryPoint)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EdmConfig config;
    config.totalShots = 1024;
    const core::EdmPipeline pipeline(device, config);
    const auto logical = benchmarks::bv6().circuit;

    Rng rng(5);
    const std::uint64_t root = rng();
    Rng rng2(5);
    const auto via_rng = pipeline.run(logical, rng2);
    const auto via_seq = pipeline.run(logical, SeedSequence(root));
    EXPECT_EQ(via_rng.edm.probabilities(), via_seq.edm.probabilities());
}

} // namespace
