/**
 * @file
 * Cross-module integration and reproducibility tests: end-to-end
 * pipeline invariants, determinism guarantees, trajectory-vs-exact
 * agreement on compiled benchmarks, and golden values that pin the
 * RNG stream (so stored experiment seeds stay meaningful).
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "common/rng.hpp"
#include "core/edm.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/esp.hpp"
#include "transpile/vf2.hpp"

namespace qedm {
namespace {

TEST(Reproducibility, RngGoldenValues)
{
    // Pin the xoshiro256++ stream: changing it would silently change
    // every stored experiment. Values captured at first release.
    Rng rng(42);
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    Rng rng2(42);
    EXPECT_EQ(rng2(), a);
    EXPECT_EQ(rng2(), b);
    // Different seed, different stream.
    Rng rng3(43);
    EXPECT_NE(rng3(), a);
}

TEST(Reproducibility, IdenticalSeedsGiveIdenticalCounts)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    const auto bench = benchmarks::bv6();
    const auto program = builder.candidates(bench.circuit).front();
    const sim::Executor exec(device);
    Rng r1(99), r2(99);
    const auto c1 = exec.run(program.physical, 2000, r1);
    const auto c2 = exec.run(program.physical, 2000, r2);
    EXPECT_EQ(c1.entries(), c2.entries());
}

TEST(Reproducibility, ExperimentIsSeedDeterministic)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::ExperimentConfig config;
    config.rounds = 2;
    config.totalShots = 800;
    const auto s1 = core::runExperiment(
        device, benchmarks::greycode(), config, 7);
    const auto s2 = core::runExperiment(
        device, benchmarks::greycode(), config, 7);
    EXPECT_EQ(s1.median.edm.ist, s2.median.edm.ist);
    EXPECT_EQ(s1.median.baselineEst.pst, s2.median.baselineEst.pst);
}

TEST(Pipeline, MembersShareGateStructureAndRespectCoupling)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EdmConfig config;
    config.totalShots = 1600;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(11);
    const auto result = pipeline.run(benchmarks::bv7().circuit, rng);
    const auto &first = result.members.front().program;
    for (const auto &member : result.members) {
        EXPECT_EQ(member.program.physical.size(),
                  first.physical.size());
        EXPECT_EQ(member.program.swapCount, first.swapCount);
        EXPECT_TRUE(member.program.physical.respectsCoupling(
            [&](int a, int b) {
                return device.topology().adjacent(a, b);
            }));
    }
}

TEST(Pipeline, Vf2CountsOnKnownPatterns)
{
    // Edge (2 vertices) into melbourne: 18 edges x 2 orientations.
    EXPECT_EQ(transpile::vf2AllEmbeddings(hw::Topology::linear(2),
                                          hw::Topology::melbourne())
                  .size(),
              36u);
    // 4-cycles: the ladder has 5 square plaquettes, each admitting 8
    // automorphic embeddings.
    EXPECT_EQ(transpile::vf2AllEmbeddings(hw::Topology::ring(4),
                                          hw::Topology::melbourne())
                  .size(),
              40u);
}

TEST(Pipeline, EspNeverExceedsOneAndDecoherenceOnlyShrinksIt)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    for (const auto &bench : benchmarks::paperSuite()) {
        const auto program = builder.candidates(bench.circuit).front();
        const double plain = transpile::esp(program.physical, device);
        const double with_t =
            transpile::espWithDecoherence(program.physical, device);
        EXPECT_GT(plain, 0.0) << bench.name;
        EXPECT_LE(plain, 1.0) << bench.name;
        EXPECT_LE(with_t, plain) << bench.name;
        EXPECT_GT(with_t, 0.0) << bench.name;
    }
}

// Trajectory sampling must converge to the exact channel for real
// compiled benchmarks (full correlated noise on).
class TrajectoryExactTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TrajectoryExactTest, AgreesWithDensityMatrix)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    const auto bench = benchmarks::byName(GetParam());
    const auto program = builder.candidates(bench.circuit).front();
    const sim::Executor exec(device);
    const auto exact = exec.exactDistribution(program.physical);
    Rng rng(13);
    const auto empirical = stats::Distribution::fromCounts(
        exec.run(program.physical, 60000, rng));
    EXPECT_LT(stats::totalVariation(exact, empirical), 0.02)
        << bench.name;
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, TrajectoryExactTest,
                         ::testing::Values("greycode", "bv-6",
                                           "fredkin"));

TEST(Pipeline, DriftChangesOutcomesButNotStructure)
{
    const hw::Device device = hw::Device::melbourne(2);
    Rng drift_rng(5);
    const hw::Device drifted = device.driftedRound(drift_rng, 0.2);
    const core::EnsembleBuilder b1(device);
    const core::EnsembleBuilder b2(drifted);
    const auto bench = benchmarks::bv6();
    const auto p1 = b1.candidates(bench.circuit).front();
    const auto p2 = b2.candidates(bench.circuit).front();
    // ESP moves with the calibration.
    EXPECT_NE(transpile::esp(p1.physical, device),
              transpile::esp(p1.physical, drifted));
    // Gate structure of the compiled seeds stays comparable.
    EXPECT_EQ(p1.physical.countGates().measure,
              p2.physical.countGates().measure);
}

TEST(Pipeline, GuardedPipelineStaysNormalizedUnderExtremeNoise)
{
    hw::NoiseSpec extreme;
    extreme.stochasticScale = 20.0;
    const hw::Device device = hw::Device::melbourne(5, extreme);
    core::EdmConfig config;
    config.totalShots = 1200;
    config.uniformityGuard = true;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(3);
    const auto result = pipeline.run(benchmarks::bv6().circuit, rng);
    EXPECT_TRUE(result.edm.isNormalized(1e-9));
    EXPECT_TRUE(result.wedm.isNormalized(1e-9));
    double wsum = 0.0;
    for (double w : result.wedmWeights)
        wsum += w;
    EXPECT_NEAR(wsum, 1.0, 1e-9);
}

TEST(Pipeline, LargerDeviceHostsPaperWorkloads)
{
    // The 27-qubit heavy-hex device can run the whole suite even
    // though exact simulation stays bounded by the *active* qubits.
    const hw::Device device = hw::Device::synthetic(
        "hex", hw::Topology::heavyHex27(), hw::CalibrationSpec{},
        hw::NoiseSpec{}, 9);
    const core::EnsembleBuilder builder(device);
    const auto bench = benchmarks::greycode();
    const auto program = builder.candidates(bench.circuit).front();
    const sim::Executor exec(device);
    Rng rng(3);
    const auto counts = exec.run(program.physical, 500, rng);
    EXPECT_EQ(counts.total(), 500u);
}

} // namespace
} // namespace qedm
