/**
 * @file
 * Unit tests for qedm_circuit: IR validation, gate counting, DAG,
 * decomposition correctness (checked against composed unitaries), and
 * QASM output.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "circuit/dag.hpp"
#include "circuit/op.hpp"
#include "circuit/unitary.hpp"
#include "common/error.hpp"

namespace qedm::circuit {
namespace {

TEST(Op, NamesAndArity)
{
    EXPECT_EQ(opName(OpKind::Cx), "cx");
    EXPECT_EQ(opName(OpKind::Rz), "rz");
    EXPECT_EQ(opArity(OpKind::H), 1);
    EXPECT_EQ(opArity(OpKind::Cx), 2);
    EXPECT_EQ(opArity(OpKind::Ccx), 3);
    EXPECT_EQ(opParamCount(OpKind::Rx), 1);
    EXPECT_EQ(opParamCount(OpKind::X), 0);
    EXPECT_TRUE(opIsUnitary(OpKind::Swap));
    EXPECT_FALSE(opIsUnitary(OpKind::Measure));
    EXPECT_TRUE(opIsTwoQubit(OpKind::Cz));
    EXPECT_FALSE(opIsTwoQubit(OpKind::H));
}

TEST(Op, MatrixShapesAndUnitarity)
{
    // H^2 = I.
    const auto h = gateMatrix1q(OpKind::H, {});
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(h[0].real(), inv_sqrt2, 1e-12);
    EXPECT_THROW(gateMatrix1q(OpKind::Cx, {}), UserError);
    EXPECT_THROW(gateMatrix1q(OpKind::Rz, {}), UserError);
    EXPECT_THROW(gateMatrix2q(OpKind::H), UserError);
}

TEST(Circuit, BuilderValidatesOperands)
{
    Circuit c(3);
    EXPECT_THROW(c.h(3), UserError);
    EXPECT_THROW(c.cx(0, 0), UserError);
    EXPECT_THROW(c.cx(0, 5), UserError);
    EXPECT_THROW(c.measure(0, 9), UserError);
    EXPECT_NO_THROW(c.h(0).cx(0, 1).measure(0, 0));
}

TEST(Circuit, RegisterBounds)
{
    EXPECT_THROW(Circuit(0), UserError);
    EXPECT_THROW(Circuit(65), UserError);
    EXPECT_THROW(Circuit(4, 21), UserError);
    const Circuit c(4, 2);
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c.numClbits(), 2);
    const Circuit d(4);
    EXPECT_EQ(d.numClbits(), 4);
}

TEST(Circuit, GateCountsTableOneStyle)
{
    Circuit c(4);
    c.h(0).x(1).cx(0, 1).swap(1, 2).measure(0, 0).measure(1, 1);
    const GateCounts counts = c.countGates();
    EXPECT_EQ(counts.singleQubit, 2);
    EXPECT_EQ(counts.twoQubit, 1 + 3); // cx + swap-as-3-cx
    EXPECT_EQ(counts.measure, 2);
}

TEST(Circuit, GateCountsCcx)
{
    Circuit c(3);
    c.ccx(0, 1, 2);
    const GateCounts counts = c.countGates();
    EXPECT_EQ(counts.twoQubit, 6);
    EXPECT_EQ(counts.singleQubit, 9);
}

TEST(Circuit, DepthSequentialVsParallel)
{
    Circuit parallel(3);
    parallel.h(0).h(1).h(2);
    EXPECT_EQ(parallel.depth(), 1);

    Circuit serial(1, 1);
    serial.h(0).x(0).h(0);
    EXPECT_EQ(serial.depth(), 3);

    Circuit mixed(3);
    mixed.h(0).cx(0, 1).cx(1, 2);
    EXPECT_EQ(mixed.depth(), 3);
}

TEST(Circuit, ActiveQubitCount)
{
    Circuit c(5);
    c.h(0).cx(0, 2);
    EXPECT_EQ(c.activeQubitCount(), 2);
}

TEST(Circuit, RemapQubitsRelabels)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    const Circuit r = c.remapQubits({3, 1}, 5);
    EXPECT_EQ(r.numQubits(), 5);
    EXPECT_EQ(r.gates()[0].qubits[0], 3);
    EXPECT_EQ(r.gates()[1].qubits[0], 3);
    EXPECT_EQ(r.gates()[1].qubits[1], 1);
    // Clbits unchanged.
    EXPECT_EQ(r.gates()[2].clbit, 0);
}

TEST(Circuit, RemapQubitsValidates)
{
    Circuit c(2);
    EXPECT_THROW(c.remapQubits({0}, 4), UserError);      // wrong size
    EXPECT_THROW(c.remapQubits({0, 0}, 4), UserError);   // duplicate
    EXPECT_THROW(c.remapQubits({0, 9}, 4), UserError);   // out of range
}

TEST(Circuit, RespectsCoupling)
{
    Circuit c(3);
    c.cx(0, 2);
    EXPECT_TRUE(c.respectsCoupling([](int, int) { return true; }));
    EXPECT_FALSE(c.respectsCoupling(
        [](int a, int b) { return std::abs(a - b) == 1; }));
}

TEST(Circuit, QasmContainsExpectedLines)
{
    Circuit c(2, 2);
    c.h(0).rz(0.5, 1).cx(0, 1).measure(1, 0);
    const std::string qasm = c.toQasm();
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.5) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[1] -> c[0];"), std::string::npos);
}

TEST(Unitary, IdentityByDefault)
{
    const Unitary u(2);
    EXPECT_EQ(u.dim(), 4u);
    EXPECT_TRUE(u.isUnitary());
    EXPECT_NEAR(std::abs(u.at(0, 0) - Complex(1.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u.at(1, 0)), 0.0, 1e-12);
}

TEST(Unitary, HSquaredIsIdentity)
{
    Circuit c(1, 0);
    c.h(0).h(0);
    const Unitary u = circuitUnitary(c);
    EXPECT_NEAR(u.distanceUpToGlobalPhase(Unitary(1)), 0.0, 1e-12);
}

TEST(Unitary, CxActsAsPermutation)
{
    Circuit c(2, 0);
    c.cx(0, 1); // control qubit 0, target qubit 1
    const Unitary u = circuitUnitary(c);
    // Basis index bit0 = qubit 0. |01> (idx 1, control on) -> |11>.
    EXPECT_NEAR(std::abs(u.at(3, 1) - Complex(1.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u.at(1, 3) - Complex(1.0)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(u.at(0, 0) - Complex(1.0)), 0.0, 1e-12);
    EXPECT_TRUE(u.isUnitary());
}

TEST(Unitary, SwapDecompositionMatchesSwap)
{
    Circuit direct(2, 0);
    direct.swap(0, 1);
    Circuit threecx(2, 0);
    threecx.cx(0, 1).cx(1, 0).cx(0, 1);
    EXPECT_NEAR(circuitUnitary(direct).distanceUpToGlobalPhase(
                    circuitUnitary(threecx)),
                0.0, 1e-12);
}

TEST(Unitary, CcxDecompositionMatchesToffoli)
{
    // Compare the Toffoli network against the exact permutation.
    Circuit c(3, 0);
    c.ccx(0, 1, 2);
    const Unitary u = circuitUnitary(c); // decomposed internally
    Unitary expect(3);
    // |110>? qubit0,1 controls: basis idx bits 0,1 set -> flip bit 2.
    expect.set(3, 3, Complex(0.0));
    expect.set(7, 7, Complex(0.0));
    expect.set(7, 3, Complex(1.0));
    expect.set(3, 7, Complex(1.0));
    EXPECT_NEAR(u.distanceUpToGlobalPhase(expect), 0.0, 1e-9);
}

TEST(Unitary, CswapDecompositionMatchesFredkin)
{
    Circuit c(3, 0);
    c.cswap(0, 1, 2);
    const Unitary u = circuitUnitary(c);
    Unitary expect(3);
    // Control = qubit 0 set: swap bits 1, 2: |011>(3) <-> |101>(5).
    expect.set(3, 3, Complex(0.0));
    expect.set(5, 5, Complex(0.0));
    expect.set(5, 3, Complex(1.0));
    expect.set(3, 5, Complex(1.0));
    EXPECT_NEAR(u.distanceUpToGlobalPhase(expect), 0.0, 1e-9);
}

TEST(Unitary, RejectsMeasurement)
{
    Circuit c(1, 1);
    c.h(0).measure(0, 0);
    EXPECT_THROW(circuitUnitary(c), UserError);
}

TEST(Dag, LinearChainHasSerialLayers)
{
    Circuit c(1, 1);
    c.h(0).x(0).h(0);
    const CircuitDag dag(c);
    EXPECT_EQ(dag.size(), 3u);
    EXPECT_EQ(dag.criticalPathLength(), 3);
    EXPECT_EQ(dag.frontLayer().size(), 1u);
}

TEST(Dag, ParallelGatesShareLayer)
{
    Circuit c(3);
    c.h(0).h(1).h(2).cx(0, 1);
    const CircuitDag dag(c);
    ASSERT_EQ(dag.layers().size(), 2u);
    EXPECT_EQ(dag.layers()[0].size(), 3u);
    EXPECT_EQ(dag.layers()[1].size(), 1u);
}

TEST(Dag, DependenciesFollowQubits)
{
    Circuit c(2);
    c.h(0).cx(0, 1).x(1);
    const CircuitDag dag(c);
    EXPECT_TRUE(dag.predecessors(0).empty());
    ASSERT_EQ(dag.predecessors(1).size(), 1u);
    EXPECT_EQ(dag.predecessors(1)[0], 0u);
    ASSERT_EQ(dag.successors(1).size(), 1u);
    EXPECT_EQ(dag.successors(1)[0], 2u);
}

TEST(Dag, BarriersAreSkipped)
{
    Circuit c(2);
    c.h(0).barrier().h(1);
    const CircuitDag dag(c);
    EXPECT_EQ(dag.size(), 2u);
    // No qubit shared: both in layer 0.
    EXPECT_EQ(dag.layers()[0].size(), 2u);
}

TEST(Dag, DepthMatchesCircuitDepth)
{
    Circuit c(4);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).h(3);
    const CircuitDag dag(c);
    EXPECT_EQ(dag.criticalPathLength(), c.depth());
}

// Parameterized: rotation gates compose additively:
// R(theta1) R(theta2) == R(theta1 + theta2).
class RotationCompositionTest
    : public ::testing::TestWithParam<std::tuple<OpKind, double, double>>
{
};

TEST_P(RotationCompositionTest, AnglesAdd)
{
    const auto [kind, t1, t2] = GetParam();
    Circuit two(1, 0);
    two.append(Gate{kind, {0}, {t1}, -1});
    two.append(Gate{kind, {0}, {t2}, -1});
    Circuit one(1, 0);
    one.append(Gate{kind, {0}, {t1 + t2}, -1});
    EXPECT_NEAR(circuitUnitary(two).distanceUpToGlobalPhase(
                    circuitUnitary(one)),
                0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Rotations, RotationCompositionTest,
    ::testing::Combine(::testing::Values(OpKind::Rx, OpKind::Ry,
                                         OpKind::Rz),
                       ::testing::Values(0.0, 0.3, 1.7, -2.2),
                       ::testing::Values(0.5, -0.9, 3.1)));

} // namespace
} // namespace qedm::circuit
