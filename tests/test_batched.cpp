/**
 * @file
 * Equivalence tests for the batched SoA trajectory engine
 * (sim/batched_statevector.hpp, DESIGN.md §17).
 *
 * The engine's contract is bit-identity with the scalar per-shot
 * path: for any batch width, any remainder batch, any --jobs value,
 * and either lane-kernel build (baseline or AVX2), a fixed seed must
 * produce the exact same Counts. These tests pin that contract:
 *
 *  - batch widths {1, 3, 8, 64} and a shot total chosen so the last
 *    batch is a non-power-of-two remainder, each compared against the
 *    pre-batching scalar path (setSimBatch(0)) on the same seed;
 *  - the full EDM/WEDM pipeline at --jobs {1, 4} crossed with batch
 *    widths, merged distributions compared double-for-double;
 *  - forceScalarLaneKernels: the baseline-ISA kernel build replayed
 *    against whatever build the CPU selected, counts bit-identical
 *    (trivially true on hosts without AVX2, a real cross-check with).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "hw/device.hpp"
#include "sim/execution_tape.hpp"
#include "sim/executor.hpp"
#include "sim/lane_kernels.hpp"
#include "stats/counts.hpp"
#include "transpile/transpiler.hpp"

namespace qedm {
namespace {

/** Counts from one fixed-seed run of bv-6 at the given lane width. */
stats::Counts
runBv6(std::size_t sim_batch, std::uint64_t shots)
{
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto program = compiler.compile(benchmarks::bv6().circuit);
    sim::Executor exec(device);
    exec.setSimBatch(sim_batch);
    Rng rng(12345);
    return exec.run(program.physical, shots, rng);
}

void
expectSameCounts(const stats::Counts &got, const stats::Counts &want)
{
    EXPECT_EQ(got.width(), want.width());
    EXPECT_EQ(got.total(), want.total());
    EXPECT_EQ(got.entries(), want.entries());
}

class BatchedWidth : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BatchedWidth, CountsMatchScalarPath)
{
    // 100 shots: widths 3/8/64 all leave a non-power-of-two remainder
    // batch (1, 4, and 36 lanes), exercising the partial-batch path.
    const stats::Counts scalar = runBv6(0, 100);
    expectSameCounts(runBv6(GetParam(), 100), scalar);
}

INSTANTIATE_TEST_SUITE_P(Widths, BatchedWidth,
                         ::testing::Values(std::size_t(1),
                                           std::size_t(3),
                                           std::size_t(8),
                                           std::size_t(64)));

TEST(BatchedWidth, LargerRunMatchesScalarPath)
{
    // A shot total past the width cap so every width runs many full
    // batches plus a remainder.
    const stats::Counts scalar = runBv6(0, 707);
    expectSameCounts(runBv6(64, 707), scalar);
}

// ---------------------------------------------------------------------
// Full pipeline: batch width x jobs, merged distributions identical.
// ---------------------------------------------------------------------

class BatchedPipeline
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>>
{
};

TEST_P(BatchedPipeline, EdmWedmInvariantToWidthAndJobs)
{
    const auto [width, jobs] = GetParam();
    const hw::Device device = hw::Device::melbourne(2);

    const auto runAt = [&](std::size_t w, int j) {
        core::EdmConfig config;
        config.totalShots = 1024;
        config.jobs = j;
        config.simBatch = w;
        core::EdmPipeline pipeline(device, config);
        Rng rng(2026);
        return pipeline.run(benchmarks::bv6().circuit, rng);
    };

    const auto ref = runAt(0, 1); // scalar path, sequential
    const auto got = runAt(width, jobs);
    ASSERT_EQ(got.edm.size(), ref.edm.size());
    ASSERT_EQ(got.wedm.size(), ref.wedm.size());
    for (std::size_t i = 0; i < ref.edm.size(); ++i) {
        EXPECT_EQ(got.edm.probabilities()[i],
                  ref.edm.probabilities()[i])
            << "edm outcome " << i;
        EXPECT_EQ(got.wedm.probabilities()[i],
                  ref.wedm.probabilities()[i])
            << "wedm outcome " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsByJobs, BatchedPipeline,
    ::testing::Combine(::testing::Values(std::size_t(1),
                                         std::size_t(3),
                                         std::size_t(64)),
                       ::testing::Values(1, 4)));

// ---------------------------------------------------------------------
// Scalar vs SIMD lane-kernel builds.
// ---------------------------------------------------------------------

/** RAII guard so a failing EXPECT cannot leak the forced build. */
struct ScalarKernelGuard
{
    ScalarKernelGuard() { sim::forceScalarLaneKernels(true); }
    ~ScalarKernelGuard() { sim::forceScalarLaneKernels(false); }
};

TEST(BatchedSimd, ScalarBuildMatchesSelectedBuild)
{
    const stats::Counts selected = runBv6(64, 256);
    const bool had_simd = sim::laneKernelsSimd();
    stats::Counts forced(1);
    {
        const ScalarKernelGuard guard;
        ASSERT_FALSE(sim::laneKernelsSimd());
        forced = runBv6(64, 256);
    }
    // On AVX2 hosts this compares two genuinely different instruction
    // streams; elsewhere it degenerates to a determinism check.
    expectSameCounts(forced, selected);
    EXPECT_EQ(sim::laneKernelsSimd(), had_simd);
}

TEST(BatchedSimd, ScalarBuildMatchesScalarPath)
{
    const ScalarKernelGuard guard;
    const stats::Counts scalar = runBv6(0, 100);
    expectSameCounts(runBv6(8, 100), scalar);
}

} // namespace
} // namespace qedm
