// Clean file for the stale-baseline self-test: the paired
// baseline.json suppresses a finding that no longer exists, so the
// `analyze_stale_baseline` ctest case expects qedm_analyze to exit
// nonzero with a [stale-baseline] finding — baselines may never rot
// silently. Never compiled; only scanned.

namespace analyze_stale {

int
answer()
{
    return 42;
}

} // namespace analyze_stale
