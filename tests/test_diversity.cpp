/**
 * @file
 * Unit tests for diversity-by-transformation: Pauli twirling, the
 * twirl/EDM composition pipelines, adaptive ensemble sizing, and the
 * extra distance metrics backing them.
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "circuit/unitary.hpp"
#include "common/error.hpp"
#include "core/diversity.hpp"
#include "core/ensemble.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/twirl.hpp"

namespace qedm {
namespace {

TEST(PauliTwirl, PreservesUnitarySemantics)
{
    // Twirled copies must equal the original up to global phase.
    circuit::Circuit c(3, 0);
    c.h(0).cx(0, 1).rz(0.3, 1).cz(1, 2).cx(2, 0).ry(0.7, 2);
    const auto original = circuit::circuitUnitary(c);
    Rng rng(11);
    for (int copy = 0; copy < 10; ++copy) {
        const auto twirled = transpile::pauliTwirl(c, rng);
        EXPECT_NEAR(circuit::circuitUnitary(twirled)
                        .distanceUpToGlobalPhase(original),
                    0.0, 1e-9)
            << "copy " << copy;
    }
}

TEST(PauliTwirl, PreservesMeasuredDistribution)
{
    const auto bench = benchmarks::bv6();
    Rng rng(13);
    const auto twirled = transpile::pauliTwirl(bench.circuit, rng);
    const auto dist = sim::idealDistribution(twirled);
    EXPECT_NEAR(dist.prob(bench.expected), 1.0, 1e-9);
}

TEST(PauliTwirl, InsertsFramesAroundTwoQubitGates)
{
    circuit::Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    Rng rng(17);
    bool saw_extra_gates = false;
    for (int copy = 0; copy < 20; ++copy) {
        const auto twirled = transpile::pauliTwirl(c, rng);
        if (twirled.size() > c.size())
            saw_extra_gates = true;
        // Only Paulis are added.
        int cx_count = 0;
        for (const auto &g : twirled.gates()) {
            if (g.kind == circuit::OpKind::Cx)
                ++cx_count;
        }
        EXPECT_EQ(cx_count, 1);
    }
    EXPECT_TRUE(saw_extra_gates);
}

TEST(PauliTwirl, DifferentDrawsDiffer)
{
    circuit::Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    Rng rng(19);
    std::set<std::string> variants;
    for (int copy = 0; copy < 30; ++copy)
        variants.insert(transpile::pauliTwirl(c, rng).toQasm());
    EXPECT_GT(variants.size(), 5u); // 16 frames exist for one CX
}

TEST(TwirlEnsemble, RunsAndMerges)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    const auto bench = benchmarks::bv6();
    const auto program = builder.candidates(bench.circuit).front();
    Rng rng(3);
    const auto result =
        core::runTwirlEnsemble(device, program, 4, 4000, rng);
    ASSERT_EQ(result.members.size(), 4u);
    EXPECT_TRUE(result.merged.isNormalized(1e-9));
    for (const auto &m : result.members)
        EXPECT_TRUE(m.isNormalized(1e-9));
}

TEST(TwirlEnsemble, Validates)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    const auto program =
        builder.candidates(benchmarks::bv6().circuit).front();
    Rng rng(3);
    EXPECT_THROW(core::runTwirlEnsemble(device, program, 0, 100, rng),
                 UserError);
    EXPECT_THROW(core::runTwirlEnsemble(device, program, 8, 4, rng),
                 UserError);
    EXPECT_THROW(core::runTwirledEdm(device, {}, 100, rng), UserError);
}

TEST(TwirledEdm, ComposesBothDiversitySources)
{
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    const auto bench = benchmarks::bv6();
    const auto members = builder.build(bench.circuit);
    Rng rng(5);
    const auto result =
        core::runTwirledEdm(device, members, 8000, rng);
    EXPECT_EQ(result.members.size(), members.size());
    EXPECT_TRUE(result.merged.isNormalized(1e-9));
}

TEST(AdaptiveEnsemble, RespectsEspFloor)
{
    const hw::Device device = hw::Device::melbourne(2);
    core::EnsembleConfig config;
    config.size = 8;
    const core::EnsembleBuilder builder(device, config);
    const auto bench = benchmarks::bv6();
    const auto members = builder.buildAdaptive(bench.circuit, 0.9);
    ASSERT_GE(members.size(), 1u);
    const double best = members.front().esp;
    for (const auto &m : members)
        EXPECT_GE(m.esp, 0.9 * best);
    // A permissive floor keeps more members than a strict one.
    const auto loose = builder.buildAdaptive(bench.circuit, 0.2);
    EXPECT_GE(loose.size(), members.size());
    EXPECT_THROW(builder.buildAdaptive(bench.circuit, 0.0), UserError);
    EXPECT_THROW(builder.buildAdaptive(bench.circuit, 1.5), UserError);
}

TEST(Metrics, TotalVariationProperties)
{
    const auto p = stats::Distribution::pointMass(2, 0);
    const auto q = stats::Distribution::pointMass(2, 3);
    EXPECT_DOUBLE_EQ(stats::totalVariation(p, q), 1.0);
    EXPECT_DOUBLE_EQ(stats::totalVariation(p, p), 0.0);
    const auto u = stats::Distribution::uniform(2);
    EXPECT_DOUBLE_EQ(stats::totalVariation(p, u), 0.75);
    EXPECT_DOUBLE_EQ(stats::totalVariation(u, p),
                     stats::totalVariation(p, u));
}

TEST(Metrics, HellingerProperties)
{
    const auto p = stats::Distribution::pointMass(2, 0);
    const auto q = stats::Distribution::pointMass(2, 3);
    EXPECT_DOUBLE_EQ(stats::hellinger(p, q), 1.0);
    EXPECT_NEAR(stats::hellinger(p, p), 0.0, 1e-9);
    const auto u = stats::Distribution::uniform(2);
    const double h = stats::hellinger(p, u);
    EXPECT_GT(h, 0.0);
    EXPECT_LT(h, 1.0);
    EXPECT_DOUBLE_EQ(stats::hellinger(u, p), h);
}

TEST(IdleDecoherence, LongIdleGapDegradesState)
{
    // A qubit idling while another works must decohere when the idle
    // flag is on: prepare |1> on q0, busy-loop q1, then measure q0.
    hw::NoiseSpec quiet;
    quiet.coherentScale = 0.0;
    quiet.stochasticScale = 0.0;
    quiet.correlatedReadoutScale = 0.0;
    quiet.enableDecoherence = true;
    quiet.idleDecoherence = true;

    hw::Device device = hw::Device::melbourne(3, quiet);
    // Remove readout error so only decoherence shows.
    hw::Calibration cal = device.calibration();
    for (int q = 0; q < 14; ++q) {
        cal.qubit(q).readoutP01 = 0.0;
        cal.qubit(q).readoutP10 = 0.0;
        cal.qubit(q).error1q = 0.0;
    }
    device = device.withCalibration(cal);

    circuit::Circuit c(14, 1);
    c.x(0);
    for (int i = 0; i < 60; ++i)
        c.x(1).x(1); // keep qubit 1 busy ~12us while qubit 0 idles
    c.measure(0, 0);
    const sim::Executor exec(device);
    const auto with_idle = exec.exactDistribution(c);

    hw::NoiseSpec no_idle = quiet;
    no_idle.idleDecoherence = false;
    Rng noise_rng(3);
    const hw::Device device2 = device.withNoise(hw::NoiseModel::sample(
        device.topology(), device.calibration(), no_idle, noise_rng));
    const sim::Executor exec2(device2);
    const auto without_idle = exec2.exactDistribution(c);

    // Idle decoherence relaxes |1> -> |0| during the wait.
    EXPECT_LT(with_idle.prob(1), without_idle.prob(1) - 0.05);
}

} // namespace
} // namespace qedm
