/**
 * @file
 * Parallel-vs-serial bit-identity for the placement search and the
 * ensemble candidate pipeline (DESIGN.md §18).
 *
 * The determinism contract says the top-K placements and the full
 * candidate list are byte-identical at every --jobs value. These
 * tests pin that contract at jobs 1/4/16, on topologies both sides
 * of the dense-distance threshold (melbourne at 14 qubits, heavy-hex
 * at 127), and under region-masked DeviceView searches — the three
 * axes along which the parallel driver, the shared pruning bound,
 * and the distance-provider sharding could each break it.
 */

#include <gtest/gtest.h>

#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "hw/device.hpp"
#include "hw/device_view.hpp"
#include "runtime/scheduler.hpp"
#include "transpile/placer.hpp"

namespace qedm {
namespace {

/** The jobs values every identity test sweeps. */
const std::vector<int> kJobsSweep = {4, 16};

hw::Device
heavyHex127Device()
{
    return hw::Device::synthetic("heavy-hex-127",
                                 hw::Topology::heavyHex127(),
                                 hw::CalibrationSpec{}, hw::NoiseSpec{},
                                 7);
}

/** EXPECTs byte-identity of two scored placement lists (exact maps,
 *  exact doubles — no tolerance). */
void
expectIdentical(const std::vector<transpile::ScoredPlacement> &serial,
                const std::vector<transpile::ScoredPlacement> &parallel,
                int jobs)
{
    ASSERT_EQ(serial.size(), parallel.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].map, parallel[i].map)
            << "jobs=" << jobs << " rank=" << i;
        EXPECT_EQ(serial[i].esp, parallel[i].esp)
            << "jobs=" << jobs << " rank=" << i;
    }
}

/** Runs the serial search, then each parallel jobs value, and checks
 *  byte-identity of the results. */
void
checkPlacementIdentity(const transpile::Placer &serial_placer,
                       const hw::DeviceView &view,
                       const circuit::Circuit &logical, std::size_t k)
{
    const auto serial = serial_placer.topPlacements(logical, k);
    ASSERT_FALSE(serial.empty());
    for (const int jobs : kJobsSweep) {
        const runtime::JobScheduler sched(jobs);
        transpile::Placer placer(view);
        placer.setScheduler(&sched);
        expectIdentical(serial, placer.topPlacements(logical, k),
                        jobs);
    }
}

TEST(ParallelPlacement, BitIdenticalOnMelbourne)
{
    // 14 qubits: below kEagerDistanceMaxQubits, dense distance path.
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Placer placer(device);
    checkPlacementIdentity(placer, hw::DeviceView(device),
                           benchmarks::qaoaMaxcutPath(7).circuit, 4);
}

TEST(ParallelPlacement, BitIdenticalOnHeavyHex127)
{
    // 127 qubits: above the threshold, on-demand sharded distances.
    const hw::Device device = heavyHex127Device();
    const transpile::Placer placer(device);
    checkPlacementIdentity(placer, hw::DeviceView(device),
                           benchmarks::qaoaMaxcutPath(7).circuit, 4);
}

TEST(ParallelPlacement, BitIdenticalWithLargerK)
{
    // K past the diversity of the frontier: the merge has to rank
    // many near-tied candidates, where an unstable tie-break between
    // worker heaps would show first.
    const hw::Device device = heavyHex127Device();
    const transpile::Placer placer(device);
    checkPlacementIdentity(placer, hw::DeviceView(device),
                           benchmarks::qaoaMaxcutPath(5).circuit, 16);
}

TEST(ParallelPlacement, BitIdenticalRegionMasked)
{
    // Region-scoped search on the large device: a band of the lattice
    // wide enough to admit several embeddings. The mask changes the
    // root frontier and the feasibility bitsets; identity must hold
    // through both.
    const hw::Device device = heavyHex127Device();
    std::vector<int> region;
    for (int q = 0; q < 60; ++q)
        region.push_back(q);
    const hw::DeviceView view(device, region);
    const transpile::Placer placer(view);
    checkPlacementIdentity(placer, view,
                           benchmarks::qaoaMaxcutPath(5).circuit, 4);

    // Every returned map stays inside the region.
    const auto top =
        placer.topPlacements(benchmarks::qaoaMaxcutPath(5).circuit, 4);
    for (const auto &scored : top) {
        for (const int p : scored.map)
            EXPECT_TRUE(view.allowed(p));
    }
}

TEST(ParallelPlacement, BitIdenticalRegionMaskedSmallDevice)
{
    // Masked search below the dense-distance threshold.
    const hw::Device device = hw::Device::melbourne(2);
    std::vector<int> region;
    for (int q = 0; q < 10; ++q)
        region.push_back(q);
    const hw::DeviceView view(device, region);
    const transpile::Placer placer(view);
    checkPlacementIdentity(placer, view,
                           benchmarks::qaoaMaxcutPath(5).circuit, 4);
}

/** Two compiled programs are byte-identical: same gates, same maps,
 *  same score. */
void
expectSamePrograms(
    const std::vector<transpile::CompiledProgram> &serial,
    const std::vector<transpile::CompiledProgram> &parallel, int jobs)
{
    ASSERT_EQ(serial.size(), parallel.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].physical.toQasm(),
                  parallel[i].physical.toQasm())
            << "jobs=" << jobs << " member=" << i;
        EXPECT_EQ(serial[i].initialMap, parallel[i].initialMap)
            << "jobs=" << jobs << " member=" << i;
        EXPECT_EQ(serial[i].finalMap, parallel[i].finalMap)
            << "jobs=" << jobs << " member=" << i;
        EXPECT_EQ(serial[i].esp, parallel[i].esp)
            << "jobs=" << jobs << " member=" << i;
        EXPECT_EQ(serial[i].swapCount, parallel[i].swapCount)
            << "jobs=" << jobs << " member=" << i;
    }
}

TEST(ParallelEnsemble, CandidatesBitIdentical)
{
    const hw::Device device = hw::Device::melbourne(2);
    const auto logical = benchmarks::bv6().circuit;
    const core::EnsembleBuilder serial_builder(device);
    const auto serial = serial_builder.candidates(logical);
    ASSERT_FALSE(serial.empty());
    for (const int jobs : kJobsSweep) {
        const runtime::JobScheduler sched(jobs);
        core::EnsembleConfig config;
        config.scheduler = &sched;
        const core::EnsembleBuilder builder(device, config);
        expectSamePrograms(serial, builder.candidates(logical), jobs);
    }
}

TEST(ParallelEnsemble, BuildBitIdenticalOnHeavyHex27)
{
    // Full ensemble construction on a heavy-hex lattice: seed
    // compile, parallel placement search, parallel candidate
    // materialization. heavy-hex-27 stays under the 64-qubit circuit
    // cap that physical-circuit materialization requires.
    const hw::Device device = hw::Device::synthetic(
        "heavy-hex-27", hw::Topology::heavyHex27(),
        hw::CalibrationSpec{}, hw::NoiseSpec{}, 7);
    const auto logical = benchmarks::bv6().circuit;
    const core::EnsembleBuilder serial_builder(device);
    const auto serial = serial_builder.build(logical);
    ASSERT_FALSE(serial.empty());
    for (const int jobs : kJobsSweep) {
        const runtime::JobScheduler sched(jobs);
        core::EnsembleConfig config;
        config.scheduler = &sched;
        const core::EnsembleBuilder builder(device, config);
        expectSamePrograms(serial, builder.build(logical), jobs);
    }
}

TEST(ParallelEnsemble, RegionScopedCandidatesBitIdentical)
{
    const hw::Device device = hw::Device::synthetic(
        "heavy-hex-27", hw::Topology::heavyHex27(),
        hw::CalibrationSpec{}, hw::NoiseSpec{}, 7);
    const auto logical = benchmarks::bv6().circuit;
    std::vector<int> region;
    for (int q = 0; q < 20; ++q)
        region.push_back(q);
    core::EnsembleConfig serial_config;
    serial_config.region = region;
    const core::EnsembleBuilder serial_builder(device, serial_config);
    const auto serial = serial_builder.candidates(logical);
    ASSERT_FALSE(serial.empty());
    for (const int jobs : kJobsSweep) {
        const runtime::JobScheduler sched(jobs);
        core::EnsembleConfig config;
        config.region = region;
        config.scheduler = &sched;
        const core::EnsembleBuilder builder(device, config);
        expectSamePrograms(serial, builder.candidates(logical), jobs);
    }
}

} // namespace
} // namespace qedm
