/**
 * @file
 * Unit tests for the extended benchmark suite (GHZ/QFT/hidden-shift/
 * ripple adder/W-state) and the decoherence-aware ESP metric.
 */

#include <gtest/gtest.h>

#include "benchmarks/extra.hpp"
#include "common/error.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "transpile/esp.hpp"
#include "transpile/transpiler.hpp"

namespace qedm::benchmarks {
namespace {

class GhzTest : public ::testing::TestWithParam<int>
{
};

TEST_P(GhzTest, RoundTripReturnsAllZeros)
{
    const Benchmark b = ghzRoundTrip(GetParam());
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(0), 1.0, 1e-9);
    EXPECT_EQ(b.expected, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GhzTest, ::testing::Range(3, 9));

TEST(GhzTest, RejectsBadSizes)
{
    EXPECT_THROW(ghzRoundTrip(2), UserError);
    EXPECT_THROW(ghzRoundTrip(9), UserError);
}

class QftTest
    : public ::testing::TestWithParam<std::pair<int, std::string>>
{
};

TEST_P(QftTest, RoundTripReturnsInput)
{
    const auto [n, input] = GetParam();
    const Benchmark b = qftRoundTrip(n, input);
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9)
        << dist.toString(0.01);
    EXPECT_EQ(b.expected, parseBitstring(input));
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, QftTest,
    ::testing::Values(std::pair{2, std::string("10")},
                      std::pair{3, std::string("101")},
                      std::pair{4, std::string("1011")},
                      std::pair{5, std::string("01101")},
                      std::pair{6, std::string("110101")}));

TEST(QftTest, Validates)
{
    EXPECT_THROW(qftRoundTrip(1, "1"), UserError);
    EXPECT_THROW(qftRoundTrip(3, "10"), UserError);
}

class HiddenShiftTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(HiddenShiftTest, RecoversShiftDeterministically)
{
    const Benchmark b = hiddenShift(GetParam());
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9)
        << "shift " << GetParam() << "\n" << dist.toString(0.01);
}

INSTANTIATE_TEST_SUITE_P(Shifts, HiddenShiftTest,
                         ::testing::Values("00", "11", "1010", "0110",
                                           "101101", "111111",
                                           "10110100"));

TEST(HiddenShiftTest, RejectsOddWidth)
{
    EXPECT_THROW(hiddenShift("101"), UserError);
    EXPECT_THROW(hiddenShift(""), UserError);
}

class RippleAdderTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(RippleAdderTest, AddsCorrectly)
{
    const auto [a, b] = GetParam();
    const Benchmark bench = rippleAdder2(a, b);
    const auto dist = sim::idealDistribution(bench.circuit);
    EXPECT_NEAR(dist.prob(static_cast<Outcome>(a + b)), 1.0, 1e-9)
        << a << " + " << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllOperandPairs, RippleAdderTest,
    ::testing::Values(std::pair{0, 0}, std::pair{0, 3},
                      std::pair{1, 1}, std::pair{1, 2},
                      std::pair{2, 2}, std::pair{2, 3},
                      std::pair{3, 1}, std::pair{3, 3}));

TEST(RippleAdderTest, RejectsWideOperands)
{
    EXPECT_THROW(rippleAdder2(4, 0), UserError);
    EXPECT_THROW(rippleAdder2(0, -1), UserError);
}

TEST(WState, UniformOverWeightOneStrings)
{
    const Benchmark b = wState();
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(0b001), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(dist.prob(0b010), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(dist.prob(0b100), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(dist.prob(0b000), 0.0, 1e-9);
    EXPECT_NEAR(dist.prob(0b111), 0.0, 1e-9);
}

TEST(Peres, ComputesToffoliPlusCnot)
{
    const Benchmark b = peres();
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9);
    EXPECT_EQ(b.expected, parseBitstring("101"));
}

class MajorityTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(MajorityTest, VotesCorrectly)
{
    const auto [a, b, c] = GetParam();
    const Benchmark bench = majority3(a, b, c);
    const auto dist = sim::idealDistribution(bench.circuit);
    EXPECT_NEAR(dist.prob(bench.expected), 1.0, 1e-9)
        << a << b << c;
    // The majority bit is the MSB of the output.
    EXPECT_EQ(getBit(bench.expected, 3), (a + b + c) >= 2 ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllInputs, MajorityTest,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                       ::testing::Values(0, 1)));

TEST(MajorityTest2, RejectsNonBits)
{
    EXPECT_THROW(majority3(2, 0, 0), UserError);
}

class ToffoliChainTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ToffoliChainTest, CascadesToAllOnes)
{
    const Benchmark b = toffoliChain(GetParam());
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9);
    EXPECT_EQ(popcount(b.expected), GetParam() + 2);
}

INSTANTIATE_TEST_SUITE_P(Depths, ToffoliChainTest,
                         ::testing::Values(2, 3, 4));

TEST(ToffoliChainTest2, RejectsBadDepths)
{
    EXPECT_THROW(toffoliChain(1), UserError);
    EXPECT_THROW(toffoliChain(5), UserError);
}

TEST(ExtraSuite, AllCompileOntoMelbourne)
{
    const hw::Device device = hw::Device::melbourne(7);
    const transpile::Transpiler compiler(device);
    for (const auto &b : extraSuite()) {
        const auto program = compiler.compile(b.circuit);
        EXPECT_TRUE(program.physical.respectsCoupling(
            [&](int x, int y) {
                return device.topology().adjacent(x, y);
            }))
            << b.name;
        EXPECT_GT(program.esp, 0.0) << b.name;
    }
}

TEST(EspWithDecoherence, PenalizesDeepCircuits)
{
    const hw::Device device = hw::Device::melbourne(7);
    circuit::Circuit shallow(14, 1);
    shallow.h(0).measure(0, 0);
    circuit::Circuit deep(14, 1);
    for (int i = 0; i < 40; ++i)
        deep.h(0);
    deep.measure(0, 0);
    const double shallow_ratio =
        transpile::espWithDecoherence(shallow, device) /
        transpile::esp(shallow, device);
    const double deep_ratio =
        transpile::espWithDecoherence(deep, device) /
        transpile::esp(deep, device);
    EXPECT_LT(deep_ratio, shallow_ratio);
    EXPECT_LE(shallow_ratio, 1.0);
    EXPECT_GT(deep_ratio, 0.0);
}

TEST(EspWithDecoherence, IdleQubitsDoNotDecay)
{
    // Only qubits the circuit touches contribute to the survival
    // factor (idle qubits carry no program state).
    const hw::Device device = hw::Device::melbourne(7);
    circuit::Circuit c(14, 1);
    c.x(3).measure(3, 0);
    const double with = transpile::espWithDecoherence(c, device);
    EXPECT_GT(with, 0.5 * transpile::esp(c, device));
}

} // namespace
} // namespace qedm::benchmarks
