/**
 * @file
 * Unit tests for qedm_benchmarks: every paper workload must produce
 * its documented correct output on an ideal machine, with sane gate
 * structure.
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "sim/executor.hpp"
#include "transpile/interaction_graph.hpp"

namespace qedm::benchmarks {
namespace {

// Every benchmark in the suite: the ideal machine must output the
// documented answer as the unique mode.
class SuiteTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteTest, IdealModeIsExpectedOutput)
{
    const Benchmark b = byName(GetParam());
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_EQ(dist.mode(), b.expected)
        << "mode " << toBitstring(dist.mode(), b.outputWidth)
        << " expected " << toBitstring(b.expected, b.outputWidth);
    // The expected answer must hold strictly more probability than
    // any other single outcome (unique mode).
    const auto top = dist.topK(2);
    if (top.size() > 1) {
        EXPECT_GT(top[0].second, top[1].second);
    }
}

TEST_P(SuiteTest, MetadataConsistent)
{
    const Benchmark b = byName(GetParam());
    EXPECT_EQ(b.circuit.numClbits(), b.outputWidth);
    EXPECT_LT(b.expected, Outcome(1) << b.outputWidth);
    EXPECT_FALSE(b.description.empty());
    EXPECT_GT(b.paperCounts.sg, 0);
    EXPECT_GT(b.paperCounts.cx, 0);
    EXPECT_GT(b.paperCounts.m, 0);
    // Measure count matches the output register.
    int measures = 0;
    for (const auto &g : b.circuit.gates()) {
        if (g.kind == circuit::OpKind::Measure)
            ++measures;
    }
    EXPECT_EQ(measures, b.outputWidth);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, SuiteTest,
    ::testing::Values("greycode", "bv-6", "bv-7", "qaoa-5", "qaoa-6",
                      "qaoa-7", "fredkin", "adder", "decode-24"));

TEST(PaperSuite, HasAllNineInTableOrder)
{
    const auto suite = paperSuite();
    ASSERT_EQ(suite.size(), 9u);
    EXPECT_EQ(suite[0].name, "greycode");
    EXPECT_EQ(suite[1].name, "bv-6");
    EXPECT_EQ(suite[8].name, "decode-24");
}

TEST(PaperSuite, ByNameRejectsUnknown)
{
    EXPECT_THROW(byName("nope"), UserError);
}

TEST(BernsteinVazirani, DeterministicOutputProbabilityOne)
{
    // BV is single-query exact: ideal machine returns the key with
    // probability 1.
    const Benchmark b = bernsteinVazirani("10101");
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9);
}

TEST(BernsteinVazirani, OracleCxCountMatchesKeyWeight)
{
    const Benchmark b = bernsteinVazirani("110011");
    const auto counts = b.circuit.countGates();
    EXPECT_EQ(counts.twoQubit, 4); // popcount of the key
    EXPECT_EQ(counts.measure, 6);
    EXPECT_EQ(b.expected, parseBitstring("110011"));
}

TEST(BernsteinVazirani, InteractionGraphIsStar)
{
    const Benchmark b = bernsteinVazirani("1111");
    const auto ig = transpile::interactionGraph(b.circuit);
    // Ancilla (qubit 4) interacts with all four key qubits.
    EXPECT_EQ(ig.degree(4), 4);
}

TEST(BernsteinVazirani, RejectsBadKeys)
{
    EXPECT_THROW(bernsteinVazirani(""), UserError);
    EXPECT_THROW(bernsteinVazirani("012"), UserError);
    EXPECT_THROW(bernsteinVazirani(std::string(11, '1')), UserError);
}

TEST(Greycode, CxCascadeLength)
{
    const Benchmark b = greycode();
    const auto counts = b.circuit.countGates();
    EXPECT_EQ(counts.twoQubit, 5); // n - 1 for 6 bits (paper: CX 5)
    EXPECT_EQ(counts.measure, 6);
    EXPECT_EQ(b.expected, parseBitstring("001000"));
}

TEST(Qaoa, ExpectedCutIsAlternating)
{
    EXPECT_EQ(qaoa5().expected, parseBitstring("10101"));
    EXPECT_EQ(qaoa6().expected, parseBitstring("101010"));
    EXPECT_EQ(qaoa7().expected, parseBitstring("1010101"));
}

TEST(Qaoa, TwoQubitGateCountMatchesPaper)
{
    // 2 CX per path edge (paper Table 1: 8 / 10 / 12).
    EXPECT_EQ(qaoa5().circuit.countGates().twoQubit, 8);
    EXPECT_EQ(qaoa6().circuit.countGates().twoQubit, 10);
    EXPECT_EQ(qaoa7().circuit.countGates().twoQubit, 12);
}

TEST(Qaoa, InteractionGraphIsPath)
{
    const auto ig = transpile::interactionGraph(qaoa5().circuit);
    EXPECT_EQ(ig.edges.size(), 4u);
    EXPECT_EQ(ig.degree(0), 1);
    EXPECT_EQ(ig.degree(2), 2);
}

TEST(Qaoa, RejectsOutOfRangeSize)
{
    EXPECT_THROW(qaoaMaxcutPath(2), UserError);
    EXPECT_THROW(qaoaMaxcutPath(9), UserError);
}

TEST(Fredkin, SwapsWhenControlSet)
{
    const Benchmark b = fredkin();
    EXPECT_EQ(b.expected, parseBitstring("110"));
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9);
}

TEST(Adder, OnePlusOneCarries)
{
    const Benchmark b = adder();
    // 1 + 1 + 0 = sum 0 carry 1, printed with a = 1 -> "011".
    EXPECT_EQ(b.expected, parseBitstring("011"));
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9);
    EXPECT_EQ(b.circuit.countGates().twoQubit, 15); // paper: CX 15
}

TEST(Decoder24, SelectZeroFiresOutputZero)
{
    const Benchmark b = decoder24();
    EXPECT_EQ(b.expected, parseBitstring("100000"));
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9);
}

// Reversible circuits are deterministic: every non-QAOA benchmark
// yields its answer with ideal probability ~1.
class DeterministicTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(DeterministicTest, IdealProbabilityIsOne)
{
    const Benchmark b = byName(GetParam());
    const auto dist = sim::idealDistribution(b.circuit);
    EXPECT_NEAR(dist.prob(b.expected), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Reversible, DeterministicTest,
                         ::testing::Values("greycode", "bv-6", "bv-7",
                                           "fredkin", "adder",
                                           "decode-24"));

// QAOA is probabilistic: the expected cut must dominate but not be
// certain.
class QaoaModeTest : public ::testing::TestWithParam<int>
{
};

TEST_P(QaoaModeTest, ExpectedCutDominatesButNotCertain)
{
    const Benchmark b = qaoaMaxcutPath(GetParam());
    const auto dist = sim::idealDistribution(b.circuit);
    const double p = dist.prob(b.expected);
    EXPECT_GT(p, 1.5 / dist.size()); // clearly above uniform
    EXPECT_LT(p, 0.999);
    EXPECT_EQ(dist.mode(), b.expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QaoaModeTest,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

} // namespace
} // namespace qedm::benchmarks
