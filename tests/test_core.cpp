/**
 * @file
 * Unit tests for qedm_core: ensemble construction, the EDM/WEDM
 * pipelines, merge rules, the uniformity guard, and the experiment
 * driver.
 */

#include <gtest/gtest.h>

#include <set>

#include "benchmarks/benchmarks.hpp"
#include "common/error.hpp"
#include "core/edm.hpp"
#include "core/ensemble.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"
#include "runtime/scheduler.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

namespace qedm::core {
namespace {

using circuit::Circuit;

hw::Device
testDevice(std::uint64_t seed = 7)
{
    return hw::Device::melbourne(seed);
}

TEST(EnsembleBuilder, CandidatesSortedByEspWithBestFirst)
{
    const hw::Device device = testDevice();
    const EnsembleBuilder builder(device);
    const auto bench = benchmarks::bv6();
    const auto all = builder.candidates(bench.circuit);
    ASSERT_GT(all.size(), 4u);
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_GE(all[i - 1].esp, all[i].esp);
}

TEST(EnsembleBuilder, CandidatesShareGateSequence)
{
    // Isomorphic transfer: every candidate executes the identical gate
    // sequence, only on different physical qubits (paper Section 5.2).
    const hw::Device device = testDevice();
    const EnsembleBuilder builder(device);
    const auto bench = benchmarks::bv6();
    const auto all = builder.candidates(bench.circuit);
    const auto &seed_gates = all.front().physical.gates();
    for (const auto &member : all) {
        const auto &gates = member.physical.gates();
        ASSERT_EQ(gates.size(), seed_gates.size());
        for (std::size_t g = 0; g < gates.size(); ++g) {
            EXPECT_EQ(gates[g].kind, seed_gates[g].kind);
            EXPECT_EQ(gates[g].params, seed_gates[g].params);
        }
        EXPECT_EQ(member.swapCount, all.front().swapCount);
    }
}

TEST(EnsembleBuilder, CandidatesHaveDistinctQubitSets)
{
    const hw::Device device = testDevice();
    const EnsembleBuilder builder(device);
    const auto all = builder.candidates(benchmarks::bv6().circuit);
    std::set<std::vector<int>> sets;
    for (const auto &member : all)
        EXPECT_TRUE(sets.insert(member.usedQubits()).second);
}

TEST(EnsembleBuilder, CandidatesRespectCoupling)
{
    const hw::Device device = testDevice();
    const EnsembleBuilder builder(device);
    const auto all = builder.candidates(benchmarks::qaoa5().circuit);
    for (const auto &member : all) {
        EXPECT_TRUE(member.physical.respectsCoupling(
            [&](int a, int b) {
                return device.topology().adjacent(a, b);
            }));
    }
}

TEST(EnsembleBuilder, BuildReturnsK)
{
    const hw::Device device = testDevice();
    for (int k : {1, 2, 4, 6}) {
        EnsembleConfig config;
        config.size = k;
        const EnsembleBuilder builder(device, config);
        const auto members = builder.build(benchmarks::bv6().circuit);
        EXPECT_EQ(static_cast<int>(members.size()), k);
    }
}

TEST(EnsembleBuilder, OverlapCapForcesDistinctRegions)
{
    const hw::Device device = testDevice();
    EnsembleConfig capped;
    capped.size = 4;
    capped.maxOverlap = 0.5;
    EnsembleConfig plain;
    plain.size = 4;
    plain.maxOverlap = 1.0;

    const auto bench = benchmarks::bv6();
    const auto tight =
        EnsembleBuilder(device, capped).build(bench.circuit);
    const auto loose =
        EnsembleBuilder(device, plain).build(bench.circuit);
    ASSERT_EQ(tight.size(), 4u);
    ASSERT_EQ(loose.size(), 4u);

    auto max_shared = [](const auto &members) {
        std::size_t worst = 0;
        for (std::size_t i = 0; i < members.size(); ++i) {
            for (std::size_t j = i + 1; j < members.size(); ++j) {
                const auto a = members[i].usedQubits();
                const auto b = members[j].usedQubits();
                std::size_t shared = 0;
                for (int q : a)
                    shared += std::count(b.begin(), b.end(), q);
                worst = std::max(worst, shared);
            }
        }
        return worst;
    };
    EXPECT_LT(max_shared(tight), max_shared(loose));
}

TEST(EnsembleBuilder, ParallelCandidatesBitIdenticalToSerial)
{
    // Fanning member materialization over the scheduler must be
    // bit-identical to the serial path: workers write pre-assigned
    // slots, so thread count never reorders or perturbs output.
    const hw::Device device = testDevice();
    const auto bench = benchmarks::bv6();
    const EnsembleBuilder serial(device);
    const auto expected = serial.candidates(bench.circuit);

    const runtime::JobScheduler pool(4);
    EnsembleConfig config;
    config.scheduler = &pool;
    const EnsembleBuilder parallel(device, config);
    const auto got = parallel.candidates(bench.circuit);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].esp, expected[i].esp) << "i=" << i;
        EXPECT_EQ(got[i].initialMap, expected[i].initialMap)
            << "i=" << i;
        EXPECT_EQ(got[i].finalMap, expected[i].finalMap) << "i=" << i;
        EXPECT_EQ(got[i].swapCount, expected[i].swapCount)
            << "i=" << i;
        ASSERT_EQ(got[i].physical.gates().size(),
                  expected[i].physical.gates().size())
            << "i=" << i;
        for (std::size_t g = 0; g < got[i].physical.gates().size();
             ++g) {
            EXPECT_EQ(got[i].physical.gates()[g].kind,
                      expected[i].physical.gates()[g].kind);
            EXPECT_EQ(got[i].physical.gates()[g].qubits,
                      expected[i].physical.gates()[g].qubits);
        }
    }
}

TEST(EnsembleBuilder, ParallelBuildBitIdenticalToSerial)
{
    const hw::Device device = testDevice();
    const auto bench = benchmarks::bv6();
    const auto expected = EnsembleBuilder(device).build(bench.circuit);

    const runtime::JobScheduler pool(4);
    EnsembleConfig config;
    config.scheduler = &pool;
    const auto got =
        EnsembleBuilder(device, config).build(bench.circuit);

    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].esp, expected[i].esp) << "i=" << i;
        EXPECT_EQ(got[i].initialMap, expected[i].initialMap)
            << "i=" << i;
    }
}

TEST(EnsembleBuilder, EqualEspCandidatesOrderLexicographically)
{
    // On an ideal device every isomorphic transfer scores exactly 1.0,
    // so candidate order is pure tie-break: lexicographic on the
    // initial map, independent of enumeration or thread order.
    const hw::Device device = hw::Device::idealMelbourne();
    const EnsembleBuilder builder(device);
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    const auto all = builder.candidates(c);
    ASSERT_GT(all.size(), 2u);
    for (std::size_t i = 1; i < all.size(); ++i) {
        EXPECT_EQ(all[i].esp, 1.0);
        EXPECT_LT(all[i - 1].initialMap, all[i].initialMap)
            << "i=" << i;
    }
}

TEST(EnsembleBuilder, RandomSelectionKeepsBestFirst)
{
    const hw::Device device = testDevice();
    EnsembleConfig config;
    config.size = 4;
    const EnsembleBuilder builder(device, config);
    Rng rng(3);
    const auto bench = benchmarks::bv6();
    const auto members = builder.buildRandom(bench.circuit, rng);
    ASSERT_EQ(members.size(), 4u);
    const auto best = builder.candidates(bench.circuit).front();
    EXPECT_EQ(members.front().initialMap, best.initialMap);
}

TEST(EnsembleBuilder, RejectsZeroSize)
{
    EnsembleConfig config;
    config.size = 0;
    const hw::Device device = testDevice();
    EXPECT_THROW(EnsembleBuilder(device, config), UserError);
}

TEST(EdmPipeline, RunProducesNormalizedMerges)
{
    const hw::Device device = testDevice();
    EdmConfig config;
    config.totalShots = 2000;
    const EdmPipeline pipeline(device, config);
    Rng rng(5);
    const auto result = pipeline.run(benchmarks::greycode().circuit,
                                     rng);
    ASSERT_EQ(result.members.size(), 4u);
    EXPECT_TRUE(result.edm.isNormalized(1e-9));
    EXPECT_TRUE(result.wedm.isNormalized(1e-9));
    for (const auto &m : result.members) {
        EXPECT_EQ(m.shots, 500u);
        EXPECT_TRUE(m.output.isNormalized(1e-9));
    }
    double wsum = 0.0;
    for (double w : result.wedmWeights)
        wsum += w;
    EXPECT_NEAR(wsum, 1.0, 1e-9);
}

TEST(EdmPipeline, ShotsSplitEvenly)
{
    const hw::Device device = testDevice();
    EdmConfig config;
    config.totalShots = 16384;
    config.ensemble.size = 4;
    const EdmPipeline pipeline(device, config);
    Rng rng(5);
    const auto result = pipeline.run(benchmarks::bv6().circuit, rng);
    for (const auto &m : result.members)
        EXPECT_EQ(m.shots, 4096u);
}

TEST(EdmPipeline, MergeRules)
{
    MemberResult a, b;
    a.output = stats::Distribution::fromProbabilities({0.9, 0.1});
    b.output = stats::Distribution::fromProbabilities({0.1, 0.9});
    const auto uniform =
        EdmPipeline::merge({a, b}, MergeRule::Uniform);
    EXPECT_NEAR(uniform.prob(0), 0.5, 1e-12);
    const auto kl = EdmPipeline::merge({a, b}, MergeRule::KlWeighted);
    EXPECT_TRUE(kl.isNormalized(1e-9));
    const auto ent =
        EdmPipeline::merge({a, b}, MergeRule::EntropyWeighted);
    EXPECT_TRUE(ent.isNormalized(1e-9));
    EXPECT_THROW(EdmPipeline::merge({}, MergeRule::Uniform), UserError);
}

TEST(EdmPipeline, BestMemberByPst)
{
    EdmResult result;
    MemberResult a, b;
    a.output = stats::Distribution::fromProbabilities({0.9, 0.1});
    b.output = stats::Distribution::fromProbabilities({0.2, 0.8});
    result.members = {a, b};
    EXPECT_EQ(result.bestMemberByPst(0), 0u);
    EXPECT_EQ(result.bestMemberByPst(1), 1u);
}

TEST(EdmPipeline, UniformityGuardDiscardsNoiseMembers)
{
    // Construct a pipeline result by hand through the merge path: one
    // strongly-peaked member plus one uniform member.
    MemberResult good, noise;
    good.output =
        stats::Distribution::fromProbabilities({0.7, 0.1, 0.1, 0.1});
    noise.output = stats::Distribution::uniform(2);
    // With the guard, the uniform member contributes nothing: EDM
    // should equal the good member's distribution. We exercise the
    // guard through a real pipeline run below; here check the
    // primitive.
    EXPECT_TRUE(stats::isNearUniform(noise.output));
    EXPECT_FALSE(stats::isNearUniform(good.output));
}

TEST(EdmPipeline, GuardKeepsEverythingWhenAllUniform)
{
    // A device so noisy every output is uniform: the guard must not
    // discard all members (it keeps everything instead).
    hw::NoiseSpec spec;
    spec.stochasticScale = 60.0;
    spec.coherentScale = 0.0;
    const hw::Device device = hw::Device::melbourne(3, spec);
    EdmConfig config;
    config.totalShots = 800;
    config.uniformityGuard = true;
    config.uniformityMargin = 0.5;
    const EdmPipeline pipeline(device, config);
    Rng rng(5);
    const auto result = pipeline.run(benchmarks::greycode().circuit,
                                     rng);
    EXPECT_TRUE(result.edm.isNormalized(1e-9));
}

TEST(Experiment, SummaryShapesAndMedians)
{
    const hw::Device device = testDevice();
    ExperimentConfig config;
    config.rounds = 3;
    config.totalShots = 1200;
    const auto summary = runExperiment(
        device, benchmarks::greycode(), config, 11);
    EXPECT_EQ(summary.benchmark, "greycode");
    ASSERT_EQ(summary.rounds.size(), 3u);
    EXPECT_GT(summary.median.baselineEst.pst, 0.0);
    EXPECT_GT(summary.median.edm.pst, 0.0);
    EXPECT_GE(summary.median.baselinePost.pst, 0.0);
    EXPECT_NO_THROW(summary.edmIstGain());
    EXPECT_NO_THROW(summary.wedmIstGain());
}

TEST(Experiment, ZeroDriftFreezesCalibration)
{
    const hw::Device device = testDevice();
    ExperimentConfig config;
    config.rounds = 2;
    config.totalShots = 600;
    config.calibrationDrift = 0.0;
    EXPECT_NO_THROW(
        runExperiment(device, benchmarks::adder(), config, 13));
}

TEST(Experiment, RejectsZeroRounds)
{
    ExperimentConfig config;
    config.rounds = 0;
    const hw::Device device = testDevice();
    EXPECT_THROW(
        runExperiment(device, benchmarks::adder(), config, 1),
        UserError);
}

// The paper's central claims, as statistical integration tests on the
// correlated-noise device model.

TEST(PaperClaims, DiverseMappingsDivergeMoreThanRepeatedRuns)
{
    // Fig. 4: pairwise KL of repeated same-mapping runs is near zero;
    // diverse mappings diverge significantly.
    const hw::Device device = testDevice();
    EdmConfig config;
    config.totalShots = 16000;
    config.ensemble.size = 4;
    config.ensemble.maxOverlap = 0.5;
    const EdmPipeline pipeline(device, config);
    Rng rng(17);
    const auto bench = benchmarks::bv6();
    const auto result = pipeline.run(bench.circuit, rng);

    // Repeated runs of the single best mapping.
    const sim::Executor exec(device);
    std::vector<stats::Distribution> repeated;
    for (int i = 0; i < 4; ++i) {
        repeated.push_back(stats::Distribution::fromCounts(exec.run(
            result.members.front().program.physical, 4000, rng)));
    }
    std::vector<stats::Distribution> diverse;
    for (const auto &m : result.members)
        diverse.push_back(m.output);

    const double same_kl = stats::meanOffDiagonal(
        stats::pairwiseDivergence(repeated));
    const double diverse_kl = stats::meanOffDiagonal(
        stats::pairwiseDivergence(diverse));
    EXPECT_LT(same_kl, 0.2);
    EXPECT_GT(diverse_kl, 3.0 * same_kl);
}

TEST(PaperClaims, EdmBeatsBaselineUnderCorrelatedErrors)
{
    // Median over seeds: EDM IST >= baseline IST in the correlated
    // regime (Figs. 7/11). Individual seeds may go either way; the
    // median must not.
    std::vector<double> gains;
    for (std::uint64_t seed : {1, 2, 4, 5, 9}) {
        const hw::Device device = hw::Device::melbourne(seed);
        EdmConfig config;
        config.totalShots = 8192;
        config.ensemble.maxOverlap = 0.5;
        const EdmPipeline pipeline(device, config);
        Rng rng(seed * 100 + 1);
        const auto bench = benchmarks::bv6();
        const auto result = pipeline.run(bench.circuit, rng);
        const auto baseline = pipeline.runSingle(
            result.members.front().program, rng);
        gains.push_back(stats::ist(result.edm, bench.expected) /
                        stats::ist(baseline, bench.expected));
    }
    EXPECT_GE(stats::median(gains), 1.0);
}

TEST(PaperClaims, EdmMatchesBaselineWithoutCorrelatedErrors)
{
    // Section 4.4 inverse check: on an IID-only device EDM cannot be
    // expected to beat the baseline materially; the merge must also
    // not catastrophically hurt (PST within a factor ~2).
    hw::NoiseSpec spec;
    spec.coherentScale = 0.0;
    spec.correlatedReadoutScale = 0.0;
    const hw::Device device = hw::Device::melbourne(7, spec);
    EdmConfig config;
    config.totalShots = 8192;
    const EdmPipeline pipeline(device, config);
    Rng rng(23);
    const auto bench = benchmarks::bv6();
    const auto result = pipeline.run(bench.circuit, rng);
    const auto baseline =
        pipeline.runSingle(result.members.front().program, rng);
    const double base_pst = stats::pst(baseline, bench.expected);
    const double edm_pst = stats::pst(result.edm, bench.expected);
    EXPECT_GT(edm_pst, 0.5 * base_pst);
    EXPECT_LT(edm_pst, 2.0 * base_pst);
}

TEST(EnsembleBuilder, EmptyRegionIsBitIdenticalToNoRegion)
{
    const hw::Device device = testDevice();
    const auto logical = benchmarks::bv6().circuit;
    EnsembleConfig with_region;
    std::vector<int> all;
    for (int q = 0; q < device.numQubits(); ++q)
        all.push_back(q);
    with_region.region = all; // full region == no region
    const EnsembleBuilder scoped(device, with_region);
    const EnsembleBuilder unscoped(device);
    const auto a = scoped.build(logical);
    const auto b = unscoped.build(logical);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].initialMap, b[i].initialMap);
        EXPECT_EQ(a[i].esp, b[i].esp); // bit-identical
    }
}

TEST(EnsembleBuilder, RegionConfinesEveryMember)
{
    const hw::Device device = testDevice();
    EnsembleConfig config;
    config.region = {0, 1, 2, 3, 4, 5, 6, 13, 12, 11};
    config.verifyPasses = true; // MappingChecker enforces the region
    const EnsembleBuilder builder(device, config);
    const auto members = builder.build(benchmarks::bv6().circuit);
    ASSERT_FALSE(members.empty());
    for (const auto &member : members) {
        for (int q : member.usedQubits())
            EXPECT_TRUE(builder.view().allowed(q))
                << "member uses qubit " << q << " outside the region";
    }
}

TEST(EnsembleBuilder, DisjointRegionsProduceDisjointPlacements)
{
    // Multi-programming: two builders on disjoint halves of the
    // device must emit ensembles that never touch each other's
    // qubits.
    const hw::Device device = testDevice();
    Circuit small(3, 3);
    small.h(0).cx(0, 1).cx(1, 2).measureAll();
    EnsembleConfig left_config;
    left_config.region = {0, 1, 2, 3, 13, 12, 11};
    EnsembleConfig right_config;
    right_config.region = {4, 5, 6, 8, 9, 10};
    const EnsembleBuilder left(device, left_config);
    const EnsembleBuilder right(device, right_config);
    const auto left_members = left.build(small);
    const auto right_members = right.build(small);
    ASSERT_FALSE(left_members.empty());
    ASSERT_FALSE(right_members.empty());
    std::set<int> left_qubits;
    for (const auto &m : left_members) {
        for (int q : m.usedQubits())
            left_qubits.insert(q);
    }
    for (const auto &m : right_members) {
        for (int q : m.usedQubits())
            EXPECT_EQ(left_qubits.count(q), 0u)
                << "regions overlap on qubit " << q;
    }
}

TEST(EnsembleBuilder, RejectsBadRegions)
{
    const hw::Device device = testDevice();
    EnsembleConfig config;
    config.region = {0, 99};
    EXPECT_THROW(EnsembleBuilder(device, config), UserError);
}

TEST(EdmPipeline, RegionScopedRunProducesResults)
{
    const hw::Device device = testDevice();
    EdmConfig config;
    config.totalShots = 1024;
    config.verifyPasses = true;
    config.ensemble.region = {0, 1, 2, 3, 4, 5, 6, 13, 12, 11};
    const EdmPipeline pipeline(device, config);
    Rng rng(9);
    const auto result = pipeline.run(benchmarks::bv6().circuit, rng);
    ASSERT_FALSE(result.members.empty());
    for (const auto &member : result.members) {
        for (const auto &g : member.program.physical.gates()) {
            for (int q : g.qubits) {
                EXPECT_TRUE(q <= 6 || q >= 11)
                    << "member escaped the region via qubit " << q;
            }
        }
    }
}

TEST(Experiment, RegionForwardsToEveryRound)
{
    const hw::Device device = testDevice();
    ExperimentConfig config;
    config.rounds = 2;
    config.totalShots = 512;
    config.ensembleSize = 2;
    config.region = {0, 1, 2, 3, 4, 5, 6, 13, 12, 11};
    config.verifyPasses = true; // checker rejects any escape
    const auto summary = runExperiment(
        device, benchmarks::bv6(), config, 11);
    EXPECT_EQ(summary.rounds.size(), 2u);
    EXPECT_GT(summary.median.edm.pst, 0.0);
}

} // namespace
} // namespace qedm::core
