/**
 * @file
 * Unit tests for the stabilizer (Clifford tableau) simulator,
 * including cross-validation against the state-vector engine.
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "benchmarks/extra.hpp"
#include "common/error.hpp"
#include "sim/executor.hpp"
#include "sim/stabilizer.hpp"
#include "stats/metrics.hpp"

namespace qedm::sim {
namespace {

using circuit::Circuit;
using circuit::OpKind;

TEST(Stabilizer, DeterministicZeroState)
{
    StabilizerState state(3);
    Rng rng(1);
    for (int q = 0; q < 3; ++q) {
        EXPECT_TRUE(state.isDeterministic(q));
        EXPECT_EQ(state.measure(q, rng), 0);
    }
}

TEST(Stabilizer, XFlipsMeasurement)
{
    StabilizerState state(2);
    state.x(1);
    Rng rng(1);
    EXPECT_EQ(state.measure(0, rng), 0);
    EXPECT_EQ(state.measure(1, rng), 1);
}

TEST(Stabilizer, HadamardGivesFairCoin)
{
    Rng rng(3);
    int ones = 0;
    const int n = 20000;
    StabilizerState state(1);
    for (int i = 0; i < n; ++i) {
        state.reset();
        state.h(0);
        EXPECT_FALSE(state.isDeterministic(0));
        ones += state.measure(0, rng);
    }
    EXPECT_NEAR(ones / double(n), 0.5, 0.02);
}

TEST(Stabilizer, BellPairCorrelations)
{
    Rng rng(5);
    int mismatch = 0;
    int ones = 0;
    const int n = 10000;
    StabilizerState state(2);
    for (int i = 0; i < n; ++i) {
        state.reset();
        state.h(0);
        state.cx(0, 1);
        const int a = state.measure(0, rng);
        const int b = state.measure(1, rng);
        mismatch += a != b;
        ones += a;
    }
    EXPECT_EQ(mismatch, 0); // perfectly correlated
    EXPECT_NEAR(ones / double(n), 0.5, 0.03);
}

TEST(Stabilizer, RepeatMeasurementIsStable)
{
    // After collapsing, a second measurement must repeat the outcome.
    Rng rng(7);
    StabilizerState state(1);
    for (int i = 0; i < 50; ++i) {
        state.reset();
        state.h(0);
        const int first = state.measure(0, rng);
        EXPECT_TRUE(state.isDeterministic(0));
        EXPECT_EQ(state.measure(0, rng), first);
    }
}

TEST(Stabilizer, SGateTurnsXBasisIntoY)
{
    // HS|0> measured after Sdg H must return to |0> deterministically:
    // (H Sdg)(S H)|0> = I|0>.
    StabilizerState state(1);
    state.h(0);
    state.s(0);
    state.sdg(0);
    state.h(0);
    Rng rng(9);
    EXPECT_TRUE(state.isDeterministic(0));
    EXPECT_EQ(state.measure(0, rng), 0);
}

TEST(Stabilizer, CzEquivalentToConjugatedCx)
{
    // CZ on |+ +> then H on target == CX Bell construction.
    Rng rng(11);
    StabilizerState state(2);
    int mismatch = 0;
    for (int i = 0; i < 5000; ++i) {
        state.reset();
        state.h(0);
        state.h(1);
        state.cz(0, 1);
        state.h(1);
        mismatch +=
            state.measure(0, rng) != state.measure(1, rng) ? 1 : 0;
    }
    EXPECT_EQ(mismatch, 0);
}

TEST(Stabilizer, SwapMovesState)
{
    StabilizerState state(2);
    state.x(0);
    state.swap(0, 1);
    Rng rng(13);
    EXPECT_EQ(state.measure(0, rng), 0);
    EXPECT_EQ(state.measure(1, rng), 1);
}

TEST(Stabilizer, RejectsNonClifford)
{
    StabilizerState state(1);
    EXPECT_THROW(state.applyGate(OpKind::T, {0}), UserError);
    EXPECT_FALSE(StabilizerState::isClifford(OpKind::Rz));
    EXPECT_TRUE(StabilizerState::isClifford(OpKind::Cz));
}

TEST(Stabilizer, LargeRegisterGhz)
{
    // 48-qubit GHZ — far beyond the state-vector engine.
    Rng rng(17);
    StabilizerState state(48);
    state.h(0);
    for (int q = 0; q + 1 < 48; ++q)
        state.cx(q, q + 1);
    const int first = state.measure(0, rng);
    for (int q = 1; q < 48; ++q)
        EXPECT_EQ(state.measure(q, rng), first);
}

TEST(RunStabilizer, CliffordDetection)
{
    EXPECT_TRUE(isCliffordCircuit(benchmarks::bv6().circuit));
    EXPECT_TRUE(isCliffordCircuit(benchmarks::greycode().circuit));
    EXPECT_TRUE(
        isCliffordCircuit(benchmarks::ghzRoundTrip(5).circuit));
    EXPECT_TRUE(isCliffordCircuit(benchmarks::hiddenShift("1010").circuit));
    // QAOA has arbitrary rotations; fredkin/adder decompose into T.
    EXPECT_FALSE(isCliffordCircuit(benchmarks::qaoa5().circuit));
    EXPECT_FALSE(isCliffordCircuit(benchmarks::adder().circuit));
}

TEST(RunStabilizer, RejectsNonCliffordCircuits)
{
    Rng rng(1);
    EXPECT_THROW(runStabilizer(benchmarks::qaoa5().circuit, 10, rng),
                 UserError);
}

// Cross-validation: for every Clifford benchmark, the tableau
// simulator must reproduce the ideal distribution exactly.
class CliffordCrossTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CliffordCrossTest, MatchesIdealDistribution)
{
    const auto bench = benchmarks::byName(GetParam());
    Rng rng(23);
    const auto counts = runStabilizer(bench.circuit, 2000, rng);
    // These benchmarks are deterministic: one outcome, the expected
    // one.
    EXPECT_EQ(counts.count(bench.expected), 2000u);
}

INSTANTIATE_TEST_SUITE_P(Deterministic, CliffordCrossTest,
                         ::testing::Values("bv-6", "bv-7", "greycode"));

TEST(RunStabilizer, MatchesStateVectorOnRandomBellCircuits)
{
    // A Clifford circuit with genuinely random outcomes: compare
    // histograms between engines.
    Circuit c(3, 3);
    c.h(0).cx(0, 1).h(2).cz(1, 2).h(2).measureAll();
    Rng rng(29);
    const auto tableau_counts = runStabilizer(c, 40000, rng);
    const auto sv_dist = idealDistribution(c);
    const auto tableau_dist =
        stats::Distribution::fromCounts(tableau_counts);
    EXPECT_LT(stats::totalVariation(sv_dist, tableau_dist), 0.02);
}

} // namespace
} // namespace qedm::sim
