/**
 * @file
 * Unit tests for gate folding, Richardson extrapolation, and
 * end-to-end zero-noise extrapolation, plus the error-budget view
 * they enable.
 */

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "circuit/unitary.hpp"
#include "common/error.hpp"
#include "core/zne.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"
#include "transpile/folding.hpp"
#include "transpile/transpiler.hpp"

namespace qedm {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::OpKind;

TEST(Folding, InverseGateAlgebra)
{
    EXPECT_EQ(transpile::inverseGate(Gate{OpKind::S, {0}, {}, -1}).kind,
              OpKind::Sdg);
    EXPECT_EQ(
        transpile::inverseGate(Gate{OpKind::Tdg, {0}, {}, -1}).kind,
        OpKind::T);
    EXPECT_EQ(transpile::inverseGate(Gate{OpKind::Cx, {0, 1}, {}, -1})
                  .kind,
              OpKind::Cx);
    const Gate rz{OpKind::Rz, {0}, {0.7}, -1};
    EXPECT_DOUBLE_EQ(transpile::inverseGate(rz).params[0], -0.7);
    EXPECT_THROW(
        transpile::inverseGate(Gate{OpKind::Measure, {0}, {}, 0}),
        UserError);
}

TEST(Folding, EveryGateComposedWithInverseIsIdentity)
{
    for (OpKind kind : {OpKind::H, OpKind::S, OpKind::T, OpKind::X,
                        OpKind::Y, OpKind::Z}) {
        Circuit c(1, 0);
        const Gate g{kind, {0}, {}, -1};
        c.append(g);
        c.append(transpile::inverseGate(g));
        EXPECT_NEAR(circuit::circuitUnitary(c).distanceUpToGlobalPhase(
                        circuit::Unitary(1)),
                    0.0, 1e-12)
            << circuit::opName(kind);
    }
}

TEST(Folding, ScaleOneIsUnchanged)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    const Circuit folded = transpile::foldTwoQubitGates(c, 1);
    EXPECT_EQ(folded.size(), c.size());
}

TEST(Folding, ScaleThreeTriplesTwoQubitGates)
{
    Circuit c(2, 2);
    c.h(0).cx(0, 1).measureAll();
    const Circuit folded = transpile::foldTwoQubitGates(c, 3);
    EXPECT_EQ(folded.countGates().twoQubit, 3);
    // Ideal semantics preserved.
    const auto a = sim::idealDistribution(c);
    const auto b = sim::idealDistribution(folded);
    EXPECT_LT(stats::totalVariation(a, b), 1e-9);
}

TEST(Folding, RejectsEvenScale)
{
    Circuit c(2, 2);
    c.cx(0, 1).measureAll();
    EXPECT_THROW(transpile::foldTwoQubitGates(c, 2), UserError);
    EXPECT_THROW(transpile::foldTwoQubitGates(c, 0), UserError);
}

TEST(Richardson, ExactForLinearAndQuadratic)
{
    // y = 2 + 3x: extrapolation to 0 gives 2 from any two points.
    EXPECT_NEAR(core::richardsonExtrapolate({{1.0, 5.0}, {3.0, 11.0}}),
                2.0, 1e-12);
    // y = 1 + x^2 through three points: exact quadratic recovery.
    EXPECT_NEAR(core::richardsonExtrapolate(
                    {{1.0, 2.0}, {3.0, 10.0}, {5.0, 26.0}}),
                1.0, 1e-9);
}

TEST(Richardson, Validates)
{
    EXPECT_THROW(core::richardsonExtrapolate({{1.0, 1.0}}), UserError);
    EXPECT_THROW(
        core::richardsonExtrapolate({{1.0, 1.0}, {1.0, 2.0}}),
        UserError);
}

TEST(Zne, FoldedCircuitsAreNoisier)
{
    // Sanity of the underlying noise-scaling assumption: PST falls
    // as the fold scale grows.
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto bench = benchmarks::greycode();
    const auto program = compiler.compile(bench.circuit);
    const sim::Executor exec(device);
    Rng rng(3);
    double prev = 2.0;
    for (int scale : {1, 3, 5}) {
        const auto folded =
            transpile::foldTwoQubitGates(program.physical, scale);
        const auto dist = stats::Distribution::fromCounts(
            exec.run(folded, 6000, rng));
        const double pst = stats::pst(dist, bench.expected);
        EXPECT_LT(pst, prev) << "scale " << scale;
        prev = pst;
    }
}

TEST(Zne, ExtrapolationImprovesObservable)
{
    // ZNE's extrapolated PST should exceed the scale-1 measurement
    // (pushing toward the noiseless value).
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto bench = benchmarks::greycode();
    const auto program = compiler.compile(bench.circuit);
    Rng rng(5);
    const core::Observable pst_observable =
        [&](const stats::Distribution &d) {
            return stats::pst(d, bench.expected);
        };
    const auto zne = core::zneExpectation(
        device, program.physical, pst_observable, {1, 3, 5}, 8000,
        rng);
    ASSERT_EQ(zne.points.size(), 3u);
    EXPECT_GT(zne.extrapolated, zne.points.front().second);
}

TEST(Zne, ValidatesInputs)
{
    const hw::Device device = hw::Device::melbourne(2);
    Circuit c(14, 1);
    c.cx(0, 1).measure(0, 0);
    Rng rng(1);
    const core::Observable obs = [](const stats::Distribution &) {
        return 0.0;
    };
    EXPECT_THROW(core::zneExpectation(device, c, obs, {1}, 100, rng),
                 UserError);
    EXPECT_THROW(
        core::zneExpectation(device, c, obs, {1, 3}, 0, rng),
        UserError);
}

} // namespace
} // namespace qedm
