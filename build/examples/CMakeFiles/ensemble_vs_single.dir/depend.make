# Empty dependencies file for ensemble_vs_single.
# This may be replaced when dependencies are built.
