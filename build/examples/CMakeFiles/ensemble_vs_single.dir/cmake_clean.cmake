file(REMOVE_RECURSE
  "CMakeFiles/ensemble_vs_single.dir/ensemble_vs_single.cpp.o"
  "CMakeFiles/ensemble_vs_single.dir/ensemble_vs_single.cpp.o.d"
  "ensemble_vs_single"
  "ensemble_vs_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_vs_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
