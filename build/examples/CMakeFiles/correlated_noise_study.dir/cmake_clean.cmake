file(REMOVE_RECURSE
  "CMakeFiles/correlated_noise_study.dir/correlated_noise_study.cpp.o"
  "CMakeFiles/correlated_noise_study.dir/correlated_noise_study.cpp.o.d"
  "correlated_noise_study"
  "correlated_noise_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlated_noise_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
