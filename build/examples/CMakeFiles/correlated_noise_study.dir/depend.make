# Empty dependencies file for correlated_noise_study.
# This may be replaced when dependencies are built.
