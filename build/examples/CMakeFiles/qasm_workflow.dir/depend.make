# Empty dependencies file for qasm_workflow.
# This may be replaced when dependencies are built.
