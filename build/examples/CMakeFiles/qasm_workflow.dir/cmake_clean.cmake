file(REMOVE_RECURSE
  "CMakeFiles/qasm_workflow.dir/qasm_workflow.cpp.o"
  "CMakeFiles/qasm_workflow.dir/qasm_workflow.cpp.o.d"
  "qasm_workflow"
  "qasm_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qasm_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
