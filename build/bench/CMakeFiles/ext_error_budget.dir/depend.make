# Empty dependencies file for ext_error_budget.
# This may be replaced when dependencies are built.
