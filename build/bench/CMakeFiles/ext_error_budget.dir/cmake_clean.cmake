file(REMOVE_RECURSE
  "CMakeFiles/ext_error_budget.dir/ext_error_budget.cpp.o"
  "CMakeFiles/ext_error_budget.dir/ext_error_budget.cpp.o.d"
  "ext_error_budget"
  "ext_error_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_error_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
