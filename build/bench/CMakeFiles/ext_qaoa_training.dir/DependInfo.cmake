
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_qaoa_training.cpp" "bench/CMakeFiles/ext_qaoa_training.dir/ext_qaoa_training.cpp.o" "gcc" "bench/CMakeFiles/ext_qaoa_training.dir/ext_qaoa_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qedm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/qedm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/qedm_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/variational/CMakeFiles/qedm_variational.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qedm_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qedm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/qedm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qedm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qedm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qedm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
