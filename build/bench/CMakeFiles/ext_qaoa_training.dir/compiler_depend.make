# Empty compiler generated dependencies file for ext_qaoa_training.
# This may be replaced when dependencies are built.
