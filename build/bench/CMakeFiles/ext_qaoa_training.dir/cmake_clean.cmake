file(REMOVE_RECURSE
  "CMakeFiles/ext_qaoa_training.dir/ext_qaoa_training.cpp.o"
  "CMakeFiles/ext_qaoa_training.dir/ext_qaoa_training.cpp.o.d"
  "ext_qaoa_training"
  "ext_qaoa_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_qaoa_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
