file(REMOVE_RECURSE
  "CMakeFiles/abl_coherent_scale.dir/abl_coherent_scale.cpp.o"
  "CMakeFiles/abl_coherent_scale.dir/abl_coherent_scale.cpp.o.d"
  "abl_coherent_scale"
  "abl_coherent_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coherent_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
