# Empty dependencies file for abl_coherent_scale.
# This may be replaced when dependencies are built.
