# Empty dependencies file for abl_mitigation.
# This may be replaced when dependencies are built.
