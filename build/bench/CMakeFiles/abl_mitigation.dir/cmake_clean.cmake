file(REMOVE_RECURSE
  "CMakeFiles/abl_mitigation.dir/abl_mitigation.cpp.o"
  "CMakeFiles/abl_mitigation.dir/abl_mitigation.cpp.o.d"
  "abl_mitigation"
  "abl_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
