file(REMOVE_RECURSE
  "CMakeFiles/abl_lookahead.dir/abl_lookahead.cpp.o"
  "CMakeFiles/abl_lookahead.dir/abl_lookahead.cpp.o.d"
  "abl_lookahead"
  "abl_lookahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
