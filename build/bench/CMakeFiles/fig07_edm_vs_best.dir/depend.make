# Empty dependencies file for fig07_edm_vs_best.
# This may be replaced when dependencies are built.
