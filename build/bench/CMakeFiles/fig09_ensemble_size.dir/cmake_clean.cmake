file(REMOVE_RECURSE
  "CMakeFiles/fig09_ensemble_size.dir/fig09_ensemble_size.cpp.o"
  "CMakeFiles/fig09_ensemble_size.dir/fig09_ensemble_size.cpp.o.d"
  "fig09_ensemble_size"
  "fig09_ensemble_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ensemble_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
