# Empty dependencies file for fig09_ensemble_size.
# This may be replaced when dependencies are built.
