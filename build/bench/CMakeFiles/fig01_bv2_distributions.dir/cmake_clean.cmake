file(REMOVE_RECURSE
  "CMakeFiles/fig01_bv2_distributions.dir/fig01_bv2_distributions.cpp.o"
  "CMakeFiles/fig01_bv2_distributions.dir/fig01_bv2_distributions.cpp.o.d"
  "fig01_bv2_distributions"
  "fig01_bv2_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_bv2_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
