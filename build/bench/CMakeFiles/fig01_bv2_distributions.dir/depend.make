# Empty dependencies file for fig01_bv2_distributions.
# This may be replaced when dependencies are built.
