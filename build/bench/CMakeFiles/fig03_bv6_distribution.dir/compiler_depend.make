# Empty compiler generated dependencies file for fig03_bv6_distribution.
# This may be replaced when dependencies are built.
