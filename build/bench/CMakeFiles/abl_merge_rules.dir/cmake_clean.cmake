file(REMOVE_RECURSE
  "CMakeFiles/abl_merge_rules.dir/abl_merge_rules.cpp.o"
  "CMakeFiles/abl_merge_rules.dir/abl_merge_rules.cpp.o.d"
  "abl_merge_rules"
  "abl_merge_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_merge_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
