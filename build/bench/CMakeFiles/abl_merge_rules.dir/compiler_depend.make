# Empty compiler generated dependencies file for abl_merge_rules.
# This may be replaced when dependencies are built.
