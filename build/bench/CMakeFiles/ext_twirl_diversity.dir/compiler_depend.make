# Empty compiler generated dependencies file for ext_twirl_diversity.
# This may be replaced when dependencies are built.
