file(REMOVE_RECURSE
  "CMakeFiles/ext_twirl_diversity.dir/ext_twirl_diversity.cpp.o"
  "CMakeFiles/ext_twirl_diversity.dir/ext_twirl_diversity.cpp.o.d"
  "ext_twirl_diversity"
  "ext_twirl_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_twirl_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
