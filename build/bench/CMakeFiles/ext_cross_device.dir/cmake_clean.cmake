file(REMOVE_RECURSE
  "CMakeFiles/ext_cross_device.dir/ext_cross_device.cpp.o"
  "CMakeFiles/ext_cross_device.dir/ext_cross_device.cpp.o.d"
  "ext_cross_device"
  "ext_cross_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cross_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
