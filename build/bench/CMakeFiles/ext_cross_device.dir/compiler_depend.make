# Empty compiler generated dependencies file for ext_cross_device.
# This may be replaced when dependencies are built.
