file(REMOVE_RECURSE
  "CMakeFiles/table2_kl_example.dir/table2_kl_example.cpp.o"
  "CMakeFiles/table2_kl_example.dir/table2_kl_example.cpp.o.d"
  "table2_kl_example"
  "table2_kl_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_kl_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
