# Empty compiler generated dependencies file for fig11_edm_wedm.
# This may be replaced when dependencies are built.
