file(REMOVE_RECURSE
  "CMakeFiles/fig11_edm_wedm.dir/fig11_edm_wedm.cpp.o"
  "CMakeFiles/fig11_edm_wedm.dir/fig11_edm_wedm.cpp.o.d"
  "fig11_edm_wedm"
  "fig11_edm_wedm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_edm_wedm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
