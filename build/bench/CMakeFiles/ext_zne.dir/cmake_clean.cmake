file(REMOVE_RECURSE
  "CMakeFiles/ext_zne.dir/ext_zne.cpp.o"
  "CMakeFiles/ext_zne.dir/ext_zne.cpp.o.d"
  "ext_zne"
  "ext_zne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_zne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
