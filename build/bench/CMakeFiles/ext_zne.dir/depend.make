# Empty dependencies file for ext_zne.
# This may be replaced when dependencies are built.
