file(REMOVE_RECURSE
  "CMakeFiles/abl_router_cost.dir/abl_router_cost.cpp.o"
  "CMakeFiles/abl_router_cost.dir/abl_router_cost.cpp.o.d"
  "abl_router_cost"
  "abl_router_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_router_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
