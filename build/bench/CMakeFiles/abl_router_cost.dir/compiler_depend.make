# Empty compiler generated dependencies file for abl_router_cost.
# This may be replaced when dependencies are built.
