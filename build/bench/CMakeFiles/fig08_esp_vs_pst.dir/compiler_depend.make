# Empty compiler generated dependencies file for fig08_esp_vs_pst.
# This may be replaced when dependencies are built.
