file(REMOVE_RECURSE
  "CMakeFiles/fig08_esp_vs_pst.dir/fig08_esp_vs_pst.cpp.o"
  "CMakeFiles/fig08_esp_vs_pst.dir/fig08_esp_vs_pst.cpp.o.d"
  "fig08_esp_vs_pst"
  "fig08_esp_vs_pst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_esp_vs_pst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
