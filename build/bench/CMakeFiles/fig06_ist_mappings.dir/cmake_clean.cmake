file(REMOVE_RECURSE
  "CMakeFiles/fig06_ist_mappings.dir/fig06_ist_mappings.cpp.o"
  "CMakeFiles/fig06_ist_mappings.dir/fig06_ist_mappings.cpp.o.d"
  "fig06_ist_mappings"
  "fig06_ist_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ist_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
