# Empty compiler generated dependencies file for fig06_ist_mappings.
# This may be replaced when dependencies are built.
