# Empty dependencies file for fig04_kl_heatmaps.
# This may be replaced when dependencies are built.
