file(REMOVE_RECURSE
  "CMakeFiles/fig04_kl_heatmaps.dir/fig04_kl_heatmaps.cpp.o"
  "CMakeFiles/fig04_kl_heatmaps.dir/fig04_kl_heatmaps.cpp.o.d"
  "fig04_kl_heatmaps"
  "fig04_kl_heatmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_kl_heatmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
