file(REMOVE_RECURSE
  "CMakeFiles/ext_ist_confidence.dir/ext_ist_confidence.cpp.o"
  "CMakeFiles/ext_ist_confidence.dir/ext_ist_confidence.cpp.o.d"
  "ext_ist_confidence"
  "ext_ist_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ist_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
