# Empty compiler generated dependencies file for ext_ist_confidence.
# This may be replaced when dependencies are built.
