file(REMOVE_RECURSE
  "CMakeFiles/fig13_buckets_balls.dir/fig13_buckets_balls.cpp.o"
  "CMakeFiles/fig13_buckets_balls.dir/fig13_buckets_balls.cpp.o.d"
  "fig13_buckets_balls"
  "fig13_buckets_balls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_buckets_balls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
