# Empty dependencies file for fig13_buckets_balls.
# This may be replaced when dependencies are built.
