file(REMOVE_RECURSE
  "CMakeFiles/qedm_cli.dir/qedm_cli.cpp.o"
  "CMakeFiles/qedm_cli.dir/qedm_cli.cpp.o.d"
  "qedm_cli"
  "qedm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
