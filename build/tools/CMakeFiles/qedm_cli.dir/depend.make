# Empty dependencies file for qedm_cli.
# This may be replaced when dependencies are built.
