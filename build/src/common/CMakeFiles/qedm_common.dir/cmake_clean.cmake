file(REMOVE_RECURSE
  "CMakeFiles/qedm_common.dir/bits.cpp.o"
  "CMakeFiles/qedm_common.dir/bits.cpp.o.d"
  "CMakeFiles/qedm_common.dir/rng.cpp.o"
  "CMakeFiles/qedm_common.dir/rng.cpp.o.d"
  "libqedm_common.a"
  "libqedm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
