file(REMOVE_RECURSE
  "libqedm_common.a"
)
