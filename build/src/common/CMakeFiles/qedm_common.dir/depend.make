# Empty dependencies file for qedm_common.
# This may be replaced when dependencies are built.
