file(REMOVE_RECURSE
  "libqedm_hw.a"
)
