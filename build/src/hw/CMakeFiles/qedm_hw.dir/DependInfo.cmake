
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/calibration.cpp" "src/hw/CMakeFiles/qedm_hw.dir/calibration.cpp.o" "gcc" "src/hw/CMakeFiles/qedm_hw.dir/calibration.cpp.o.d"
  "/root/repo/src/hw/device.cpp" "src/hw/CMakeFiles/qedm_hw.dir/device.cpp.o" "gcc" "src/hw/CMakeFiles/qedm_hw.dir/device.cpp.o.d"
  "/root/repo/src/hw/noise_model.cpp" "src/hw/CMakeFiles/qedm_hw.dir/noise_model.cpp.o" "gcc" "src/hw/CMakeFiles/qedm_hw.dir/noise_model.cpp.o.d"
  "/root/repo/src/hw/serialization.cpp" "src/hw/CMakeFiles/qedm_hw.dir/serialization.cpp.o" "gcc" "src/hw/CMakeFiles/qedm_hw.dir/serialization.cpp.o.d"
  "/root/repo/src/hw/topology.cpp" "src/hw/CMakeFiles/qedm_hw.dir/topology.cpp.o" "gcc" "src/hw/CMakeFiles/qedm_hw.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qedm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
