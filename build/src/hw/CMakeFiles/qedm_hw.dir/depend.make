# Empty dependencies file for qedm_hw.
# This may be replaced when dependencies are built.
