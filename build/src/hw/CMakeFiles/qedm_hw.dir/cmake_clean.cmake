file(REMOVE_RECURSE
  "CMakeFiles/qedm_hw.dir/calibration.cpp.o"
  "CMakeFiles/qedm_hw.dir/calibration.cpp.o.d"
  "CMakeFiles/qedm_hw.dir/device.cpp.o"
  "CMakeFiles/qedm_hw.dir/device.cpp.o.d"
  "CMakeFiles/qedm_hw.dir/noise_model.cpp.o"
  "CMakeFiles/qedm_hw.dir/noise_model.cpp.o.d"
  "CMakeFiles/qedm_hw.dir/serialization.cpp.o"
  "CMakeFiles/qedm_hw.dir/serialization.cpp.o.d"
  "CMakeFiles/qedm_hw.dir/topology.cpp.o"
  "CMakeFiles/qedm_hw.dir/topology.cpp.o.d"
  "libqedm_hw.a"
  "libqedm_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
