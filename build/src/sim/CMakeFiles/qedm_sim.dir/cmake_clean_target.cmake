file(REMOVE_RECURSE
  "libqedm_sim.a"
)
