
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/channels.cpp" "src/sim/CMakeFiles/qedm_sim.dir/channels.cpp.o" "gcc" "src/sim/CMakeFiles/qedm_sim.dir/channels.cpp.o.d"
  "/root/repo/src/sim/density_matrix.cpp" "src/sim/CMakeFiles/qedm_sim.dir/density_matrix.cpp.o" "gcc" "src/sim/CMakeFiles/qedm_sim.dir/density_matrix.cpp.o.d"
  "/root/repo/src/sim/executor.cpp" "src/sim/CMakeFiles/qedm_sim.dir/executor.cpp.o" "gcc" "src/sim/CMakeFiles/qedm_sim.dir/executor.cpp.o.d"
  "/root/repo/src/sim/mitigation.cpp" "src/sim/CMakeFiles/qedm_sim.dir/mitigation.cpp.o" "gcc" "src/sim/CMakeFiles/qedm_sim.dir/mitigation.cpp.o.d"
  "/root/repo/src/sim/stabilizer.cpp" "src/sim/CMakeFiles/qedm_sim.dir/stabilizer.cpp.o" "gcc" "src/sim/CMakeFiles/qedm_sim.dir/stabilizer.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/qedm_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/qedm_sim.dir/statevector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qedm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qedm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/qedm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qedm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
