file(REMOVE_RECURSE
  "CMakeFiles/qedm_sim.dir/channels.cpp.o"
  "CMakeFiles/qedm_sim.dir/channels.cpp.o.d"
  "CMakeFiles/qedm_sim.dir/density_matrix.cpp.o"
  "CMakeFiles/qedm_sim.dir/density_matrix.cpp.o.d"
  "CMakeFiles/qedm_sim.dir/executor.cpp.o"
  "CMakeFiles/qedm_sim.dir/executor.cpp.o.d"
  "CMakeFiles/qedm_sim.dir/mitigation.cpp.o"
  "CMakeFiles/qedm_sim.dir/mitigation.cpp.o.d"
  "CMakeFiles/qedm_sim.dir/stabilizer.cpp.o"
  "CMakeFiles/qedm_sim.dir/stabilizer.cpp.o.d"
  "CMakeFiles/qedm_sim.dir/statevector.cpp.o"
  "CMakeFiles/qedm_sim.dir/statevector.cpp.o.d"
  "libqedm_sim.a"
  "libqedm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
