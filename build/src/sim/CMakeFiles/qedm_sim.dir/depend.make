# Empty dependencies file for qedm_sim.
# This may be replaced when dependencies are built.
