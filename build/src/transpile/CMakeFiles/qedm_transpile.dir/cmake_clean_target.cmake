file(REMOVE_RECURSE
  "libqedm_transpile.a"
)
