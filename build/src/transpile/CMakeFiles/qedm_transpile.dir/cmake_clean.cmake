file(REMOVE_RECURSE
  "CMakeFiles/qedm_transpile.dir/crosstalk.cpp.o"
  "CMakeFiles/qedm_transpile.dir/crosstalk.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/distances.cpp.o"
  "CMakeFiles/qedm_transpile.dir/distances.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/esp.cpp.o"
  "CMakeFiles/qedm_transpile.dir/esp.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/folding.cpp.o"
  "CMakeFiles/qedm_transpile.dir/folding.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/interaction_graph.cpp.o"
  "CMakeFiles/qedm_transpile.dir/interaction_graph.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/invert_measure.cpp.o"
  "CMakeFiles/qedm_transpile.dir/invert_measure.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/lookahead_router.cpp.o"
  "CMakeFiles/qedm_transpile.dir/lookahead_router.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/placer.cpp.o"
  "CMakeFiles/qedm_transpile.dir/placer.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/router.cpp.o"
  "CMakeFiles/qedm_transpile.dir/router.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/transpiler.cpp.o"
  "CMakeFiles/qedm_transpile.dir/transpiler.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/twirl.cpp.o"
  "CMakeFiles/qedm_transpile.dir/twirl.cpp.o.d"
  "CMakeFiles/qedm_transpile.dir/vf2.cpp.o"
  "CMakeFiles/qedm_transpile.dir/vf2.cpp.o.d"
  "libqedm_transpile.a"
  "libqedm_transpile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_transpile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
