
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transpile/crosstalk.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/crosstalk.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/crosstalk.cpp.o.d"
  "/root/repo/src/transpile/distances.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/distances.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/distances.cpp.o.d"
  "/root/repo/src/transpile/esp.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/esp.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/esp.cpp.o.d"
  "/root/repo/src/transpile/folding.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/folding.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/folding.cpp.o.d"
  "/root/repo/src/transpile/interaction_graph.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/interaction_graph.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/interaction_graph.cpp.o.d"
  "/root/repo/src/transpile/invert_measure.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/invert_measure.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/invert_measure.cpp.o.d"
  "/root/repo/src/transpile/lookahead_router.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/lookahead_router.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/lookahead_router.cpp.o.d"
  "/root/repo/src/transpile/placer.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/placer.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/placer.cpp.o.d"
  "/root/repo/src/transpile/router.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/router.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/router.cpp.o.d"
  "/root/repo/src/transpile/transpiler.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/transpiler.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/transpiler.cpp.o.d"
  "/root/repo/src/transpile/twirl.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/twirl.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/twirl.cpp.o.d"
  "/root/repo/src/transpile/vf2.cpp" "src/transpile/CMakeFiles/qedm_transpile.dir/vf2.cpp.o" "gcc" "src/transpile/CMakeFiles/qedm_transpile.dir/vf2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qedm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qedm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/qedm_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
