# Empty compiler generated dependencies file for qedm_transpile.
# This may be replaced when dependencies are built.
