# Empty dependencies file for qedm_benchmarks.
# This may be replaced when dependencies are built.
