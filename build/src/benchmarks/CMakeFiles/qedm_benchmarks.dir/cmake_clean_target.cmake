file(REMOVE_RECURSE
  "libqedm_benchmarks.a"
)
