file(REMOVE_RECURSE
  "CMakeFiles/qedm_benchmarks.dir/benchmarks.cpp.o"
  "CMakeFiles/qedm_benchmarks.dir/benchmarks.cpp.o.d"
  "CMakeFiles/qedm_benchmarks.dir/extra.cpp.o"
  "CMakeFiles/qedm_benchmarks.dir/extra.cpp.o.d"
  "libqedm_benchmarks.a"
  "libqedm_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
