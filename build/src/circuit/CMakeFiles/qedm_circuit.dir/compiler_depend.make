# Empty compiler generated dependencies file for qedm_circuit.
# This may be replaced when dependencies are built.
