
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/qedm_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/qedm_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/dag.cpp" "src/circuit/CMakeFiles/qedm_circuit.dir/dag.cpp.o" "gcc" "src/circuit/CMakeFiles/qedm_circuit.dir/dag.cpp.o.d"
  "/root/repo/src/circuit/op.cpp" "src/circuit/CMakeFiles/qedm_circuit.dir/op.cpp.o" "gcc" "src/circuit/CMakeFiles/qedm_circuit.dir/op.cpp.o.d"
  "/root/repo/src/circuit/qasm_parser.cpp" "src/circuit/CMakeFiles/qedm_circuit.dir/qasm_parser.cpp.o" "gcc" "src/circuit/CMakeFiles/qedm_circuit.dir/qasm_parser.cpp.o.d"
  "/root/repo/src/circuit/unitary.cpp" "src/circuit/CMakeFiles/qedm_circuit.dir/unitary.cpp.o" "gcc" "src/circuit/CMakeFiles/qedm_circuit.dir/unitary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qedm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
