file(REMOVE_RECURSE
  "libqedm_circuit.a"
)
