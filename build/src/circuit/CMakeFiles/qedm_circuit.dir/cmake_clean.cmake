file(REMOVE_RECURSE
  "CMakeFiles/qedm_circuit.dir/circuit.cpp.o"
  "CMakeFiles/qedm_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/qedm_circuit.dir/dag.cpp.o"
  "CMakeFiles/qedm_circuit.dir/dag.cpp.o.d"
  "CMakeFiles/qedm_circuit.dir/op.cpp.o"
  "CMakeFiles/qedm_circuit.dir/op.cpp.o.d"
  "CMakeFiles/qedm_circuit.dir/qasm_parser.cpp.o"
  "CMakeFiles/qedm_circuit.dir/qasm_parser.cpp.o.d"
  "CMakeFiles/qedm_circuit.dir/unitary.cpp.o"
  "CMakeFiles/qedm_circuit.dir/unitary.cpp.o.d"
  "libqedm_circuit.a"
  "libqedm_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
