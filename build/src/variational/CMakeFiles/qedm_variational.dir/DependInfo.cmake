
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/variational/maxcut.cpp" "src/variational/CMakeFiles/qedm_variational.dir/maxcut.cpp.o" "gcc" "src/variational/CMakeFiles/qedm_variational.dir/maxcut.cpp.o.d"
  "/root/repo/src/variational/qaoa.cpp" "src/variational/CMakeFiles/qedm_variational.dir/qaoa.cpp.o" "gcc" "src/variational/CMakeFiles/qedm_variational.dir/qaoa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qedm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qedm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/qedm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qedm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
