file(REMOVE_RECURSE
  "CMakeFiles/qedm_variational.dir/maxcut.cpp.o"
  "CMakeFiles/qedm_variational.dir/maxcut.cpp.o.d"
  "CMakeFiles/qedm_variational.dir/qaoa.cpp.o"
  "CMakeFiles/qedm_variational.dir/qaoa.cpp.o.d"
  "libqedm_variational.a"
  "libqedm_variational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_variational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
