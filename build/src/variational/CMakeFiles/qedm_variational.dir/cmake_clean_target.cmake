file(REMOVE_RECURSE
  "libqedm_variational.a"
)
