# Empty compiler generated dependencies file for qedm_variational.
# This may be replaced when dependencies are built.
