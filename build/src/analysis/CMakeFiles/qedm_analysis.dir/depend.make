# Empty dependencies file for qedm_analysis.
# This may be replaced when dependencies are built.
