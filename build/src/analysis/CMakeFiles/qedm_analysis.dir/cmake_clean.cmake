file(REMOVE_RECURSE
  "CMakeFiles/qedm_analysis.dir/buckets_balls.cpp.o"
  "CMakeFiles/qedm_analysis.dir/buckets_balls.cpp.o.d"
  "CMakeFiles/qedm_analysis.dir/csv.cpp.o"
  "CMakeFiles/qedm_analysis.dir/csv.cpp.o.d"
  "CMakeFiles/qedm_analysis.dir/report.cpp.o"
  "CMakeFiles/qedm_analysis.dir/report.cpp.o.d"
  "libqedm_analysis.a"
  "libqedm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
