file(REMOVE_RECURSE
  "libqedm_analysis.a"
)
