# Empty dependencies file for qedm_core.
# This may be replaced when dependencies are built.
