file(REMOVE_RECURSE
  "libqedm_core.a"
)
