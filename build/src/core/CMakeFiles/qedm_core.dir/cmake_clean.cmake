file(REMOVE_RECURSE
  "CMakeFiles/qedm_core.dir/diversity.cpp.o"
  "CMakeFiles/qedm_core.dir/diversity.cpp.o.d"
  "CMakeFiles/qedm_core.dir/edm.cpp.o"
  "CMakeFiles/qedm_core.dir/edm.cpp.o.d"
  "CMakeFiles/qedm_core.dir/ensemble.cpp.o"
  "CMakeFiles/qedm_core.dir/ensemble.cpp.o.d"
  "CMakeFiles/qedm_core.dir/error_budget.cpp.o"
  "CMakeFiles/qedm_core.dir/error_budget.cpp.o.d"
  "CMakeFiles/qedm_core.dir/experiment.cpp.o"
  "CMakeFiles/qedm_core.dir/experiment.cpp.o.d"
  "CMakeFiles/qedm_core.dir/zne.cpp.o"
  "CMakeFiles/qedm_core.dir/zne.cpp.o.d"
  "libqedm_core.a"
  "libqedm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
