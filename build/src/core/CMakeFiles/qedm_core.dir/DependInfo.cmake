
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/diversity.cpp" "src/core/CMakeFiles/qedm_core.dir/diversity.cpp.o" "gcc" "src/core/CMakeFiles/qedm_core.dir/diversity.cpp.o.d"
  "/root/repo/src/core/edm.cpp" "src/core/CMakeFiles/qedm_core.dir/edm.cpp.o" "gcc" "src/core/CMakeFiles/qedm_core.dir/edm.cpp.o.d"
  "/root/repo/src/core/ensemble.cpp" "src/core/CMakeFiles/qedm_core.dir/ensemble.cpp.o" "gcc" "src/core/CMakeFiles/qedm_core.dir/ensemble.cpp.o.d"
  "/root/repo/src/core/error_budget.cpp" "src/core/CMakeFiles/qedm_core.dir/error_budget.cpp.o" "gcc" "src/core/CMakeFiles/qedm_core.dir/error_budget.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/qedm_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/qedm_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/zne.cpp" "src/core/CMakeFiles/qedm_core.dir/zne.cpp.o" "gcc" "src/core/CMakeFiles/qedm_core.dir/zne.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qedm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/qedm_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/qedm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qedm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/qedm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/transpile/CMakeFiles/qedm_transpile.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/qedm_benchmarks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
