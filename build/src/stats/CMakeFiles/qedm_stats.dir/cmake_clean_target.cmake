file(REMOVE_RECURSE
  "libqedm_stats.a"
)
