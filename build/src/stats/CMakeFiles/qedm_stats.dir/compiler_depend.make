# Empty compiler generated dependencies file for qedm_stats.
# This may be replaced when dependencies are built.
