file(REMOVE_RECURSE
  "CMakeFiles/qedm_stats.dir/counts.cpp.o"
  "CMakeFiles/qedm_stats.dir/counts.cpp.o.d"
  "CMakeFiles/qedm_stats.dir/distribution.cpp.o"
  "CMakeFiles/qedm_stats.dir/distribution.cpp.o.d"
  "CMakeFiles/qedm_stats.dir/metrics.cpp.o"
  "CMakeFiles/qedm_stats.dir/metrics.cpp.o.d"
  "libqedm_stats.a"
  "libqedm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qedm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
