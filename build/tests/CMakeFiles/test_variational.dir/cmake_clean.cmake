file(REMOVE_RECURSE
  "CMakeFiles/test_variational.dir/test_variational.cpp.o"
  "CMakeFiles/test_variational.dir/test_variational.cpp.o.d"
  "test_variational"
  "test_variational.pdb"
  "test_variational[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
