# Empty dependencies file for test_variational.
# This may be replaced when dependencies are built.
