# Empty dependencies file for test_extra_benchmarks.
# This may be replaced when dependencies are built.
