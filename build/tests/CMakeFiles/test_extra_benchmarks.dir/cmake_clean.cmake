file(REMOVE_RECURSE
  "CMakeFiles/test_extra_benchmarks.dir/test_extra_benchmarks.cpp.o"
  "CMakeFiles/test_extra_benchmarks.dir/test_extra_benchmarks.cpp.o.d"
  "test_extra_benchmarks"
  "test_extra_benchmarks.pdb"
  "test_extra_benchmarks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
