file(REMOVE_RECURSE
  "CMakeFiles/test_error_budget.dir/test_error_budget.cpp.o"
  "CMakeFiles/test_error_budget.dir/test_error_budget.cpp.o.d"
  "test_error_budget"
  "test_error_budget.pdb"
  "test_error_budget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
