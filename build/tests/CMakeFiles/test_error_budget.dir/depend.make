# Empty dependencies file for test_error_budget.
# This may be replaced when dependencies are built.
