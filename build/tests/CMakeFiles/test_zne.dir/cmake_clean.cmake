file(REMOVE_RECURSE
  "CMakeFiles/test_zne.dir/test_zne.cpp.o"
  "CMakeFiles/test_zne.dir/test_zne.cpp.o.d"
  "test_zne"
  "test_zne.pdb"
  "test_zne[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
