# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_transpile[1]_include.cmake")
include("/root/repo/build/tests/test_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_qasm[1]_include.cmake")
include("/root/repo/build/tests/test_mitigation[1]_include.cmake")
include("/root/repo/build/tests/test_extra_benchmarks[1]_include.cmake")
include("/root/repo/build/tests/test_lookahead[1]_include.cmake")
include("/root/repo/build/tests/test_variational[1]_include.cmake")
include("/root/repo/build/tests/test_diversity[1]_include.cmake")
include("/root/repo/build/tests/test_csv[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_stabilizer[1]_include.cmake")
include("/root/repo/build/tests/test_zne[1]_include.cmake")
include("/root/repo/build/tests/test_error_budget[1]_include.cmake")
