/**
 * @file
 * Scenario example: file-based workflow. Serializes a program to
 * OpenQASM text, parses it back, compiles it variation-aware, prints
 * the physical QASM, and runs EDM — the round trip an external
 * toolchain would use to hand circuits to this library.
 *
 * Build & run:  ./build/examples/qasm_workflow
 */

#include <iostream>

#include "analysis/report.hpp"
#include "benchmarks/benchmarks.hpp"
#include "circuit/qasm_parser.hpp"
#include "core/edm.hpp"
#include "hw/device.hpp"
#include "stats/metrics.hpp"
#include "transpile/transpiler.hpp"

int
main()
{
    using namespace qedm;

    // 1. A logical program, as QASM text (as a file would supply it).
    const auto bench = benchmarks::adder();
    const std::string qasm_text = bench.circuit.toQasm();
    std::cout << "== logical program (OpenQASM) ==\n"
              << qasm_text << "\n";

    // 2. Parse it back into the IR.
    const circuit::Circuit parsed = circuit::parseQasm(qasm_text);
    std::cout << "parsed " << parsed.size() << " operations on "
              << parsed.numQubits() << " qubits\n\n";

    // 3. Compile onto the modeled machine.
    const hw::Device device = hw::Device::melbourne(2);
    const transpile::Transpiler compiler(device);
    const auto program = compiler.compile(parsed);
    std::cout << "== physical program ==\n"
              << "ESP " << analysis::fmt(program.esp) << ", "
              << program.swapCount << " SWAPs, qubits";
    for (int q : program.usedQubits())
        std::cout << " " << q;
    std::cout << "\n\n";

    // 4. Run EDM and report.
    core::EdmConfig config;
    config.totalShots = 8192;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(5);
    const auto result = pipeline.run(parsed, rng);
    std::cout << "== EDM output ==\n"
              << analysis::distributionReport(result.edm,
                                              bench.expected, 6);
    return 0;
}
