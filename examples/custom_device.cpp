/**
 * @file
 * Scenario example: using the library on your own hardware model.
 *
 * Builds a synthetic 16-qubit grid device, characterizes it, compiles
 * a benchmark onto it, and runs EDM — demonstrating that nothing in
 * the pipeline is specific to the IBMQ-14 preset.
 *
 * Build & run:  ./build/examples/custom_device
 */

#include <iostream>

#include "analysis/report.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "hw/device.hpp"
#include "stats/metrics.hpp"
#include "transpile/transpiler.hpp"

int
main()
{
    using namespace qedm;

    // A 4x4 grid device with heavier-than-default link variation and
    // moderate correlated noise.
    hw::CalibrationSpec cal_spec;
    cal_spec.meanCxError = 0.04;
    cal_spec.spread = 0.8;
    hw::NoiseSpec noise_spec;
    noise_spec.overRotationSigma = 0.5;
    noise_spec.zzCrosstalkSigma = 0.15;
    const hw::Device device = hw::Device::synthetic(
        "grid-16", hw::Topology::grid(4, 4), cal_spec, noise_spec,
        /*seed=*/12345);

    std::cout << "device: " << device.name() << ", "
              << device.numQubits() << " qubits, "
              << device.topology().numEdges() << " links\n"
              << "mean CX error: "
              << analysis::fmt(device.calibration().meanCxError(), 4)
              << ", mean readout error: "
              << analysis::fmt(
                     device.calibration().meanReadoutError(), 4)
              << "\n\n";

    // Compile and inspect a workload.
    const auto bench = benchmarks::bv7();
    const transpile::Transpiler compiler(device);
    const auto program = compiler.compile(bench.circuit);
    std::cout << bench.name << " placed on qubits";
    for (int q : program.usedQubits())
        std::cout << " " << q;
    std::cout << " with " << program.swapCount
              << " SWAPs, ESP = " << analysis::fmt(program.esp)
              << "\n\n";

    // EDM vs baseline on the custom device.
    core::EdmConfig config;
    config.totalShots = 16384;
    const core::EdmPipeline pipeline(device, config);
    Rng rng(7);
    const auto result = pipeline.run(bench.circuit, rng);
    const auto baseline =
        pipeline.runSingle(result.members.front().program, rng);

    analysis::Table table({"policy", "PST", "IST"});
    table.addRow({"single best mapping",
                  analysis::fmt(stats::pst(baseline, bench.expected), 4),
                  analysis::fmt(stats::ist(baseline, bench.expected),
                                2)});
    table.addRow({"EDM (top-4)",
                  analysis::fmt(stats::pst(result.edm, bench.expected),
                                4),
                  analysis::fmt(stats::ist(result.edm, bench.expected),
                                2)});
    table.addRow({"WEDM",
                  analysis::fmt(stats::pst(result.wedm, bench.expected),
                                4),
                  analysis::fmt(stats::ist(result.wedm, bench.expected),
                                2)});
    std::cout << table.toString();
    return 0;
}
