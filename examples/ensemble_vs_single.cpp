/**
 * @file
 * Scenario example: the full paper methodology on one workload.
 *
 * Runs the QAOA-6 max-cut benchmark through multiple experimental
 * rounds with calibration drift, comparing four policies per round —
 * best-at-compile-time, best-post-execution, EDM, and WEDM — and
 * reporting the median round exactly as the paper does (Section 4.2).
 *
 * Build & run:  ./build/examples/ensemble_vs_single [benchmark-name]
 */

#include <iostream>
#include <string>

#include "analysis/report.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/experiment.hpp"
#include "hw/device.hpp"

int
main(int argc, char **argv)
{
    using namespace qedm;

    const std::string name = argc > 1 ? argv[1] : "qaoa-6";
    const benchmarks::Benchmark bench = benchmarks::byName(name);
    const hw::Device device = hw::Device::melbourne(2);

    core::ExperimentConfig config;
    config.rounds = 5;
    config.totalShots = 16384;
    config.ensembleSize = 4;
    config.calibrationDrift = 0.10;

    std::cout << "benchmark " << bench.name << " on " << device.name()
              << ", " << config.rounds << " rounds x "
              << config.totalShots << " trials\n"
              << "expected output: "
              << toBitstring(bench.expected, bench.outputWidth)
              << "\n\nrunning";
    std::cout.flush();

    const auto summary =
        core::runExperiment(device, bench, config, 42);
    std::cout << " done\n\n";

    analysis::Table per_round({"round", "base-est IST", "base-post IST",
                               "EDM IST", "WEDM IST"});
    for (std::size_t r = 0; r < summary.rounds.size(); ++r) {
        const auto &round = summary.rounds[r];
        per_round.addRow({std::to_string(r),
                          analysis::fmt(round.baselineEst.ist, 2),
                          analysis::fmt(round.baselinePost.ist, 2),
                          analysis::fmt(round.edm.ist, 2),
                          analysis::fmt(round.wedm.ist, 2)});
    }
    std::cout << per_round.toString() << "\n";

    analysis::Table medians({"policy", "median IST", "median PST"});
    medians.addRow({"single best (compile-time ESP)",
                    analysis::fmt(summary.median.baselineEst.ist, 2),
                    analysis::fmt(summary.median.baselineEst.pst, 4)});
    medians.addRow({"single best (post-execution)",
                    analysis::fmt(summary.median.baselinePost.ist, 2),
                    analysis::fmt(summary.median.baselinePost.pst, 4)});
    medians.addRow({"EDM (top-4, uniform merge)",
                    analysis::fmt(summary.median.edm.ist, 2),
                    analysis::fmt(summary.median.edm.pst, 4)});
    medians.addRow({"WEDM (diversity-weighted merge)",
                    analysis::fmt(summary.median.wedm.ist, 2),
                    analysis::fmt(summary.median.wedm.pst, 4)});
    std::cout << medians.toString() << "\n"
              << "EDM gain over baseline:  "
              << analysis::fmt(summary.edmIstGain(), 2) << "x\n"
              << "WEDM gain over baseline: "
              << analysis::fmt(summary.wedmIstGain(), 2) << "x\n";
    return 0;
}
