/**
 * @file
 * Scenario example: validating results with independent engines.
 *
 * Runs the same Clifford workload (BV-6) through the three simulation
 * engines — stabilizer tableau, ideal state vector, and the noisy
 * trajectory executor — then uses the error-budget analyzer to show
 * which noise family explains the gap between ideal and noisy.
 *
 * Build & run:  ./build/examples/engine_crosscheck
 */

#include <chrono>
#include <iostream>

#include "analysis/report.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "core/error_budget.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "sim/stabilizer.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;
    using Clock = std::chrono::steady_clock;

    const auto bench = benchmarks::bv6();
    std::cout << "workload: " << bench.name << ", expected "
              << toBitstring(bench.expected, bench.outputWidth)
              << "\n\n";

    // 1. Stabilizer tableau (polynomial time; BV is Clifford).
    Rng rng(3);
    auto t0 = Clock::now();
    const auto tableau_counts =
        sim::runStabilizer(bench.circuit, 16384, rng);
    auto t1 = Clock::now();
    std::cout << "stabilizer engine: P(correct) = "
              << analysis::fmt(
                     double(tableau_counts.count(bench.expected)) /
                         double(tableau_counts.total()), 4)
              << "  ("
              << std::chrono::duration<double, std::milli>(t1 - t0)
                     .count()
              << " ms for 16384 shots)\n";

    // 2. Ideal state vector.
    const auto ideal = sim::idealDistribution(bench.circuit);
    std::cout << "state-vector engine: P(correct) = "
              << analysis::fmt(ideal.prob(bench.expected), 4) << "\n";

    // 3. Noisy trajectory executor on the modeled machine.
    const hw::Device device = hw::Device::melbourne(2);
    const core::EnsembleBuilder builder(device);
    const auto program = builder.candidates(bench.circuit).front();
    const sim::Executor exec(device);
    t0 = Clock::now();
    const auto noisy = stats::Distribution::fromCounts(
        exec.run(program.physical, 16384, rng));
    t1 = Clock::now();
    std::cout << "noisy executor:     P(correct) = "
              << analysis::fmt(noisy.prob(bench.expected), 4)
              << ", IST = "
              << analysis::fmt(stats::ist(noisy, bench.expected), 2)
              << "  ("
              << std::chrono::duration<double, std::milli>(t1 - t0)
                     .count()
              << " ms for 16384 shots)\n\n";

    // 4. Where did the probability go? Per-source error budget.
    const auto budget =
        core::errorBudget(device, program.physical, bench.expected);
    analysis::Table table({"noise family disabled", "PST",
                           "PST recovered"});
    for (const auto &entry : budget.entries) {
        table.addRow({entry.source,
                      analysis::fmt(entry.pstWithout, 4),
                      analysis::fmt(entry.pstRecovered, 4)});
    }
    std::cout << "error budget (base PST "
              << analysis::fmt(budget.basePst, 4) << "):\n"
              << table.toString();
    return 0;
}
