/**
 * @file
 * Scenario example: why correlated errors break majority-vote
 * inference, and how mapping diversity restores it.
 *
 * Walks through the paper's Section 3 characterization on the device
 * model: (1) repeated runs of one mapping produce near-identical wrong
 * answers (low pairwise KL); (2) diverse mappings make *different*
 * mistakes (high pairwise KL); (3) merging the diverse outputs recovers
 * the correct answer even when every member individually fails.
 *
 * Build & run:  ./build/examples/correlated_noise_study
 */

#include <iostream>
#include <vector>

#include "analysis/report.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ensemble.hpp"
#include "hw/device.hpp"
#include "sim/executor.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;

    const auto bench = benchmarks::bv6();
    const hw::Device device = hw::Device::melbourne(2);
    const sim::Executor exec(device);
    Rng rng(99);

    core::EnsembleConfig config;
    config.size = 4;
    const core::EnsembleBuilder builder(device, config);
    const auto programs = builder.build(bench.circuit);

    std::cout << "== Step 1: repeated runs of the single best mapping "
                 "==\n";
    std::vector<stats::Distribution> repeats;
    for (int run = 0; run < 4; ++run) {
        repeats.push_back(stats::Distribution::fromCounts(
            exec.run(programs.front().physical, 4096, rng)));
    }
    const double repeat_kl = stats::meanOffDiagonal(
        stats::pairwiseDivergence(repeats));
    for (std::size_t r = 0; r < repeats.size(); ++r) {
        const auto top = repeats[r].topK(1).front();
        std::cout << "  run " << r << ": dominant outcome "
                  << toBitstring(top.first, 6) << " (p="
                  << analysis::fmt(top.second, 3) << ")"
                  << (top.first == bench.expected ? "  CORRECT"
                                                  : "  WRONG")
                  << "\n";
    }
    std::cout << "  mean pairwise divergence: "
              << analysis::fmt(repeat_kl)
              << "  -> same mistakes every time\n\n";

    std::cout << "== Step 2: four diverse mappings ==\n";
    std::vector<stats::Distribution> diverse;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        diverse.push_back(stats::Distribution::fromCounts(
            exec.run(programs[i].physical, 4096, rng)));
        const auto top = diverse.back().topK(1).front();
        std::cout << "  mapping " << char('A' + i) << " (qubits";
        for (int q : programs[i].usedQubits())
            std::cout << " " << q;
        std::cout << "): dominant " << toBitstring(top.first, 6)
                  << (top.first == bench.expected ? "  CORRECT"
                                                  : "  WRONG")
                  << ", IST "
                  << analysis::fmt(
                         stats::ist(diverse.back(), bench.expected), 2)
                  << "\n";
    }
    const double diverse_kl = stats::meanOffDiagonal(
        stats::pairwiseDivergence(diverse));
    std::cout << "  mean pairwise divergence: "
              << analysis::fmt(diverse_kl) << "  ("
              << analysis::fmt(diverse_kl /
                               std::max(repeat_kl, 1e-9), 1)
              << "x the single-mapping value)\n\n";

    std::cout << "== Step 3: merge the diverse outputs ==\n";
    const auto edm = stats::mergeUniform(diverse);
    const auto wedm = stats::mergeWeighted(
        diverse, stats::wedmWeights(diverse));
    std::cout << analysis::distributionReport(edm, bench.expected, 6)
              << "\nEDM IST  = "
              << analysis::fmt(stats::ist(edm, bench.expected), 2)
              << ", WEDM IST = "
              << analysis::fmt(stats::ist(wedm, bench.expected), 2)
              << "\nwrong answers disagree across mappings and "
                 "average out;\nthe correct answer is reinforced by "
                 "every member.\n";
    return 0;
}
