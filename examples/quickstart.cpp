/**
 * @file
 * Quickstart: compile Bernstein-Vazirani onto the modeled IBMQ-14
 * machine, run the single-best-mapping baseline and the EDM/WEDM
 * ensembles, and compare inference quality.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "analysis/report.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/edm.hpp"
#include "hw/device.hpp"
#include "stats/metrics.hpp"

int
main()
{
    using namespace qedm;

    // The device model: melbourne topology + calibration, with the
    // correlated noise the paper observed on the real machine.
    const hw::Device device = hw::Device::melbourne(/*noise_seed=*/7);

    // The workload: BV with the paper's 6-bit key 110011.
    const benchmarks::Benchmark bench = benchmarks::bv6();
    std::cout << "benchmark: " << bench.name << " ("
              << bench.description << ")\n"
              << "expected:  "
              << toBitstring(bench.expected, bench.outputWidth) << "\n\n";

    // Run the EDM pipeline: top-4 mappings, 16384 trials total.
    core::EdmConfig config;
    config.ensemble.size = 4;
    config.totalShots = 16384;
    const core::EdmPipeline pipeline(device, config);

    Rng rng(1234);
    const core::EdmResult result = pipeline.run(bench.circuit, rng);

    std::cout << "ensemble members (top-" << result.members.size()
              << " by ESP):\n";
    for (std::size_t i = 0; i < result.members.size(); ++i) {
        const auto &m = result.members[i];
        std::cout << "  M" << i << ": ESP=" << analysis::fmt(m.program.esp)
                  << "  PST=" << analysis::fmt(
                         stats::pst(m.output, bench.expected), 4)
                  << "  IST=" << analysis::fmt(
                         stats::ist(m.output, bench.expected))
                  << "  wedm-weight="
                  << analysis::fmt(result.wedmWeights[i]) << "\n";
    }

    // Baseline: every trial on the compile-time best mapping.
    const stats::Distribution baseline =
        pipeline.runSingle(result.members.front().program, rng);

    std::cout << "\n--- baseline (single best mapping, all trials) ---\n"
              << analysis::distributionReport(baseline, bench.expected, 8)
              << "\n--- EDM (uniform merge of 4 mappings) ---\n"
              << analysis::distributionReport(result.edm, bench.expected,
                                              8)
              << "\n--- WEDM (diversity-weighted merge) ---\n"
              << analysis::distributionReport(result.wedm,
                                              bench.expected, 8);

    const double base_ist = stats::ist(baseline, bench.expected);
    std::cout << "\nIST gain: EDM "
              << analysis::fmt(stats::ist(result.edm, bench.expected) /
                               base_ist, 2)
              << "x, WEDM "
              << analysis::fmt(stats::ist(result.wedm, bench.expected) /
                               base_ist, 2)
              << "x over the single-best baseline\n";
    return 0;
}
